//! A small comment/string/raw-string-aware Rust lexer.
//!
//! The analyzer does not need a full parse tree — every rule it
//! enforces is a lexical contract ("this identifier may not appear
//! here", "this line needs a justification comment"). What it *does*
//! need is to never be fooled by Rust's literal syntax: a `HashMap`
//! inside a doc comment, a `//` inside a string, a `"` inside a nested
//! block comment, or a `thread::spawn` inside a raw-string fixture must
//! not fire a rule.
//!
//! [`scan`] therefore produces three views of a source file:
//!
//! 1. `code` — a byte-for-byte copy of the input in which every comment
//!    and every string/char-literal *content* has been blanked with
//!    spaces (newlines are preserved, so offsets and line numbers are
//!    stable). Rules do substring/identifier searches on this view and
//!    can never match inside a literal or comment.
//! 2. `comments` — the comment spans with their original text, for the
//!    `// dapc-allow(rule): reason` and `// ordering:` annotation
//!    lookups.
//! 3. `strings` — every string/byte-string/char literal with its
//!    *decoded* bytes (escape sequences resolved), for the
//!    snapshot-magic rule which must read version bytes like `\x02`.
//!
//! The lexer also brace-matches `#[cfg(test)]` / `#[test]` items on the
//! blanked view (safe: braces inside literals are blanked) so rules can
//! exempt inline test code.

/// Kind of string-ish literal collected by the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrKind {
    /// `"..."`
    Str,
    /// `b"..."`
    ByteStr,
    /// `r"..."` / `r#"..."#`
    RawStr,
    /// `br"..."` / `br#"..."#`
    RawByteStr,
    /// `'x'`
    Char,
    /// `b'x'`
    ByteChar,
}

impl StrKind {
    /// True for the byte-string forms (`b"..."`, `br"..."`), the only
    /// literals that can spell a snapshot magic.
    pub fn is_byte_str(self) -> bool {
        matches!(self, StrKind::ByteStr | StrKind::RawByteStr)
    }
}

/// A string/char literal span with its decoded content bytes.
#[derive(Debug, Clone)]
pub struct StrLit {
    pub kind: StrKind,
    /// Byte offset of the opening delimiter (prefix included).
    pub start: usize,
    /// Byte offset one past the closing delimiter.
    pub end: usize,
    /// 1-indexed line of `start`.
    pub line: u32,
    /// Content bytes with escape sequences decoded (raw strings are
    /// taken verbatim). `\u{…}` escapes are encoded as UTF-8.
    pub bytes: Vec<u8>,
}

/// A comment span with its original text (delimiters included).
#[derive(Debug, Clone)]
pub struct Comment {
    pub start: usize,
    pub end: usize,
    /// 1-indexed line of `start`.
    pub line: u32,
    /// 1-indexed line of the last byte (block comments span lines).
    pub end_line: u32,
    pub text: String,
}

/// Result of scanning one source file. See the module docs for the
/// three views.
#[derive(Debug)]
pub struct Scan {
    pub code: Vec<u8>,
    pub comments: Vec<Comment>,
    pub strings: Vec<StrLit>,
    /// Byte offset of the start of each line (line N is 1-indexed as
    /// `line_starts[N-1]`).
    pub line_starts: Vec<usize>,
    /// Sorted, non-overlapping byte ranges covered by `#[cfg(test)]` /
    /// `#[test]` items.
    pub test_spans: Vec<(usize, usize)>,
}

impl Scan {
    /// 1-indexed line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> u32 {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// Whether `offset` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Concatenated text of all comments that start on `line`
    /// (1-indexed); empty string if the line has none.
    pub fn comment_text_on_line(&self, line: u32) -> String {
        let mut out = String::new();
        for c in &self.comments {
            if c.line <= line && line <= c.end_line {
                out.push_str(&c.text);
                out.push('\n');
            }
        }
        out
    }

    /// Whether `line` (1-indexed) contains nothing but whitespace and
    /// comment text — used to walk upward through a justification
    /// comment block.
    pub fn line_is_comment_only(&self, line: u32) -> bool {
        let Some(&start) = self.line_starts.get(line as usize - 1) else {
            return false;
        };
        let end = self
            .line_starts
            .get(line as usize)
            .copied()
            .unwrap_or(self.code.len());
        let has_comment = self
            .comments
            .iter()
            .any(|c| c.line <= line && line <= c.end_line);
        has_comment
            && self.code[start..end]
                .iter()
                .all(|&b| b == b' ' || b == b'\t' || b == b'\n' || b == b'\r')
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scan `src` into the three views. Never fails: malformed input
/// (unterminated literals or comments) is blanked to end of file, which
/// is the conservative choice for a linter — nothing in the unparsed
/// tail can fire a rule.
pub fn scan(src: &[u8]) -> Scan {
    let mut code = src.to_vec();
    let mut comments = Vec::new();
    let mut strings = Vec::new();

    let mut line_starts = vec![0usize];
    for (i, &b) in src.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize, starts: &[usize]| -> u32 {
        match starts.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    };

    let n = src.len();
    let mut i = 0usize;
    while i < n {
        let b = src[i];
        // Line comment (also doc comments `///`, `//!`).
        if b == b'/' && i + 1 < n && src[i + 1] == b'/' {
            let start = i;
            while i < n && src[i] != b'\n' {
                i += 1;
            }
            comments.push(Comment {
                start,
                end: i,
                line: line_of(start, &line_starts),
                end_line: line_of(i.saturating_sub(1).max(start), &line_starts),
                text: String::from_utf8_lossy(&src[start..i]).into_owned(),
            });
            blank(&mut code, start, i);
            continue;
        }
        // Block comment, possibly nested.
        if b == b'/' && i + 1 < n && src[i + 1] == b'*' {
            let start = i;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if src[i] == b'/' && i + 1 < n && src[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if src[i] == b'*' && i + 1 < n && src[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            comments.push(Comment {
                start,
                end: i,
                line: line_of(start, &line_starts),
                end_line: line_of(i.saturating_sub(1).max(start), &line_starts),
                text: String::from_utf8_lossy(&src[start..i]).into_owned(),
            });
            blank(&mut code, start, i);
            continue;
        }
        // Identifier or prefixed literal (r"", b"", br"", b'', c"").
        if is_ident_start(b) {
            let start = i;
            while i < n && is_ident_continue(src[i]) {
                i += 1;
            }
            let ident = &src[start..i];
            // Raw identifier `r#name` — consume and continue.
            if ident == b"r" && i < n && src[i] == b'#' && i + 1 < n && is_ident_start(src[i + 1]) {
                i += 1;
                while i < n && is_ident_continue(src[i]) {
                    i += 1;
                }
                continue;
            }
            let raw = matches!(ident, b"r" | b"br" | b"cr");
            let next = src.get(i).copied();
            if raw && (next == Some(b'"') || next == Some(b'#')) {
                let kind = if ident == b"br" {
                    StrKind::RawByteStr
                } else {
                    StrKind::RawStr
                };
                if let Some(lit) = lex_raw_string(src, start, i, kind, &line_starts) {
                    i = lit.end;
                    blank(&mut code, lit.start, lit.end);
                    strings.push(lit);
                }
                continue;
            }
            if matches!(ident, b"b" | b"c") && next == Some(b'"') {
                let kind = if ident == b"b" {
                    StrKind::ByteStr
                } else {
                    StrKind::Str
                };
                let lit = lex_quoted(src, start, i, kind, &line_starts);
                i = lit.end;
                blank(&mut code, lit.start, lit.end);
                strings.push(lit);
                continue;
            }
            if ident == b"b" && next == Some(b'\'') {
                let lit = lex_char(src, start, i, StrKind::ByteChar, &line_starts);
                i = lit.end;
                blank(&mut code, lit.start, lit.end);
                strings.push(lit);
                continue;
            }
            continue;
        }
        // Plain string.
        if b == b'"' {
            let lit = lex_quoted(src, i, i, StrKind::Str, &line_starts);
            i = lit.end;
            blank(&mut code, lit.start, lit.end);
            strings.push(lit);
            continue;
        }
        // Char literal vs lifetime/label.
        if b == b'\'' {
            if i + 1 < n && src[i + 1] == b'\\' {
                let lit = lex_char(src, i, i, StrKind::Char, &line_starts);
                i = lit.end;
                blank(&mut code, lit.start, lit.end);
                strings.push(lit);
                continue;
            }
            if i + 2 < n && src[i + 2] == b'\'' && src[i + 1] != b'\'' {
                // 'x' — a one-character literal ('a', '"', '{', …).
                let lit = lex_char(src, i, i, StrKind::Char, &line_starts);
                i = lit.end;
                blank(&mut code, lit.start, lit.end);
                strings.push(lit);
                continue;
            }
            // Lifetime or label: consume the quote and the identifier.
            i += 1;
            while i < n && is_ident_continue(src[i]) {
                i += 1;
            }
            continue;
        }
        i += 1;
    }

    let test_spans = find_test_spans(&code);
    Scan {
        code,
        comments,
        strings,
        line_starts,
        test_spans,
    }
}

/// Blank `code[start..end]` with spaces, preserving newlines so line
/// numbers and offsets survive.
fn blank(code: &mut [u8], start: usize, end: usize) {
    let end = end.min(code.len());
    for b in &mut code[start..end] {
        if *b != b'\n' {
            *b = b' ';
        }
    }
}

/// Lex a `"…"`-delimited (possibly prefixed) string starting with its
/// prefix at `start` and the opening quote at `quote`.
fn lex_quoted(src: &[u8], start: usize, quote: usize, kind: StrKind, starts: &[usize]) -> StrLit {
    let n = src.len();
    let mut i = quote + 1;
    let mut bytes = Vec::new();
    while i < n {
        match src[i] {
            b'"' => {
                i += 1;
                break;
            }
            b'\\' => {
                let (decoded, len) = decode_escape(&src[i..]);
                bytes.extend_from_slice(&decoded);
                i += len;
            }
            b => {
                bytes.push(b);
                i += 1;
            }
        }
    }
    StrLit {
        kind,
        start,
        end: i,
        line: line_at(start, starts),
        bytes,
    }
}

/// Lex `r"…"` / `r#"…"#` / `br#"…"#` with any number of hashes. The
/// prefix starts at `start`; `after_prefix` points at the first `#` or
/// `"`. Returns `None` if this turns out not to be a raw string (e.g.
/// `r#` followed by something other than `"` after the hashes — a raw
/// identifier was already handled by the caller, so this is a stray
/// `#`; treat it as ordinary code).
fn lex_raw_string(
    src: &[u8],
    start: usize,
    after_prefix: usize,
    kind: StrKind,
    starts: &[usize],
) -> Option<StrLit> {
    let n = src.len();
    let mut i = after_prefix;
    let mut hashes = 0usize;
    while i < n && src[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || src[i] != b'"' {
        return None;
    }
    i += 1;
    let content_start = i;
    // Find `"` followed by `hashes` hashes.
    while i < n {
        if src[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while j < n && h < hashes && src[j] == b'#' {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return Some(StrLit {
                    kind,
                    start,
                    end: j,
                    line: line_at(start, starts),
                    bytes: src[content_start..i].to_vec(),
                });
            }
        }
        i += 1;
    }
    Some(StrLit {
        kind,
        start,
        end: n,
        line: line_at(start, starts),
        bytes: src[content_start..].to_vec(),
    })
}

/// Lex a char/byte-char literal; the opening quote is at `quote`.
fn lex_char(src: &[u8], start: usize, quote: usize, kind: StrKind, starts: &[usize]) -> StrLit {
    let n = src.len();
    let mut i = quote + 1;
    let mut bytes = Vec::new();
    if i < n {
        if src[i] == b'\\' {
            let (decoded, len) = decode_escape(&src[i..]);
            bytes.extend_from_slice(&decoded);
            i += len;
        } else {
            bytes.push(src[i]);
            i += 1;
        }
    }
    if i < n && src[i] == b'\'' {
        i += 1;
    }
    StrLit {
        kind,
        start,
        end: i,
        line: line_at(start, starts),
        bytes,
    }
}

fn line_at(offset: usize, starts: &[usize]) -> u32 {
    match starts.binary_search(&offset) {
        Ok(i) => i as u32 + 1,
        Err(i) => i as u32,
    }
}

/// Decode one escape sequence at the head of `tail` (which begins with
/// `\`). Returns the decoded bytes and the consumed length.
fn decode_escape(tail: &[u8]) -> (Vec<u8>, usize) {
    match tail.get(1) {
        Some(b'x') => {
            let hi = tail.get(2).and_then(|b| (*b as char).to_digit(16));
            let lo = tail.get(3).and_then(|b| (*b as char).to_digit(16));
            match (hi, lo) {
                (Some(h), Some(l)) => (vec![(h * 16 + l) as u8], 4),
                _ => (vec![b'\\'], 1),
            }
        }
        Some(b'u') => {
            // \u{…}: consume through the closing brace, decode as UTF-8.
            let mut j = 2;
            let mut value = 0u32;
            if tail.get(j) == Some(&b'{') {
                j += 1;
                while let Some(&b) = tail.get(j) {
                    if b == b'}' {
                        j += 1;
                        break;
                    }
                    if let Some(d) = (b as char).to_digit(16) {
                        value = value.saturating_mul(16).saturating_add(d);
                    }
                    j += 1;
                }
            }
            let decoded = char::from_u32(value)
                .map(|c| c.to_string().into_bytes())
                .unwrap_or_default();
            (decoded, j)
        }
        Some(b'n') => (vec![b'\n'], 2),
        Some(b't') => (vec![b'\t'], 2),
        Some(b'r') => (vec![b'\r'], 2),
        Some(b'0') => (vec![0], 2),
        Some(b'\\') => (vec![b'\\'], 2),
        Some(b'\'') => (vec![b'\''], 2),
        Some(b'"') => (vec![b'"'], 2),
        Some(b'\n') => (Vec::new(), 2), // line-continuation escape
        Some(&other) => (vec![other], 2),
        None => (vec![b'\\'], 1),
    }
}

/// Find `#[cfg(test)]` / `#[test]` items on the blanked view and return
/// the byte span each governs (attribute through the end of the
/// following item — matched braces, or the terminating semicolon).
fn find_test_spans(code: &[u8]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for pat in [&b"#[cfg(test)]"[..], &b"#[test]"[..]] {
        let mut from = 0usize;
        while let Some(pos) = find_sub(code, pat, from) {
            from = pos + pat.len();
            let end = item_end(code, pos + pat.len());
            spans.push((pos, end));
        }
    }
    spans.sort_unstable();
    // Merge overlaps (e.g. `#[test]` fns inside a `#[cfg(test)]` mod).
    let mut merged: Vec<(usize, usize)> = Vec::new();
    for (s, e) in spans {
        match merged.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => merged.push((s, e)),
        }
    }
    merged
}

/// End of the item that starts after an attribute: skip to the first
/// top-level `{` and match braces, or stop at a `;` that appears first
/// (attribute on a `use`/`const`/macro-call item).
fn item_end(code: &[u8], mut i: usize) -> usize {
    let n = code.len();
    while i < n {
        match code[i] {
            b'{' => {
                let mut depth = 0usize;
                while i < n {
                    match code[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return n;
            }
            b';' => return i + 1,
            _ => i += 1,
        }
    }
    n
}

/// First occurrence of `needle` in `haystack[from..]`.
pub fn find_sub(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}
