//! The `dapc-analyze` binary: the CI gate for the workspace invariant
//! linter.
//!
//! ```text
//! dapc-analyze --workspace [--root PATH]   # lint the whole workspace
//! dapc-analyze --list-rules                # print the rule names
//! dapc-analyze FILE.rs [FILE.rs …]         # lint individual files
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage / I/O trouble.
//! Violations print one per line as `path:line: [rule] message`, so
//! they are clickable in editors and greppable in CI logs.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dapc_analyze::{analyze_workspace, find_workspace_root, Config, RULE_NAMES};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: dapc-analyze --workspace [--root PATH] | --list-rules | FILE.rs …");
        return ExitCode::from(2);
    }

    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in RULE_NAMES {
                    println!("{rule}");
                }
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                return ExitCode::from(2);
            }
            file => files.push(PathBuf::from(file)),
        }
    }

    let config = Config::workspace();
    let findings = if workspace {
        let root = match root.or_else(|| {
            std::env::current_dir()
                .ok()
                .and_then(|d| find_workspace_root(&d))
        }) {
            Some(r) => r,
            None => {
                eprintln!("dapc-analyze: could not locate the workspace root (try --root)");
                return ExitCode::from(2);
            }
        };
        analyze_workspace(&root, &config)
    } else {
        // Individual files: resolve each against the located workspace
        // root so allowlists keyed on relative paths still apply.
        let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
        let ws = root.or_else(|| find_workspace_root(&cwd));
        let mut out = Vec::new();
        for file in &files {
            out.extend(analyze_one(file, ws.as_deref(), &config));
        }
        out
    };

    if findings.is_empty() {
        println!("dapc-analyze: clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!("dapc-analyze: {} violation(s)", findings.len());
        ExitCode::from(1)
    }
}

fn analyze_one(file: &Path, ws: Option<&Path>, config: &Config) -> Vec<dapc_analyze::Finding> {
    let abs = file.canonicalize().unwrap_or_else(|_| file.to_path_buf());
    let rel = ws
        .and_then(|w| abs.strip_prefix(w).ok())
        .unwrap_or(&abs)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    // Infer the crate name from a `crates/<name>/` path component.
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("dapc")
        .to_string();
    let role = if rel.ends_with("/src/lib.rs") || rel == "src/lib.rs" {
        dapc_analyze::FileRole::CrateRoot
    } else if rel.contains("/src/bin/") || rel.ends_with("/src/main.rs") {
        dapc_analyze::FileRole::BinRoot
    } else {
        dapc_analyze::FileRole::Module
    };
    match std::fs::read(file) {
        Ok(src) => dapc_analyze::analyze_source(&rel, &crate_name, role, &src, config),
        Err(err) => vec![dapc_analyze::Finding {
            file: rel,
            line: 0,
            rule: "io",
            message: format!("failed to read: {err}"),
        }],
    }
}
