//! The rule engine: each contract the workspace sells is a named,
//! individually-testable rule over a [`Scan`].
//!
//! Every rule honours the inline suppression annotation
//!
//! ```text
//! // dapc-allow(rule-name): reason why this site is exempt
//! ```
//!
//! placed on the violating line or on a comment-only line block
//! immediately above it. The reason is mandatory — an allow without a
//! justification is itself a violation — so every exception is visible
//! and explained in the diff that introduces it.

use crate::lexer::{find_sub, Scan};

/// One violation: file-relative path, 1-indexed line, rule name and a
/// human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// What kind of file is being analyzed; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// `src/lib.rs` of a workspace crate.
    CrateRoot,
    /// `src/bin/*.rs` / `src/main.rs` of a workspace crate.
    BinRoot,
    /// Any other module under a workspace crate's `src/`.
    Module,
    /// A vendored stand-in's crate root — only `forbid-unsafe` applies
    /// (the stand-ins legitimately construct RNGs and spawn threads).
    VendorRoot,
}

/// Engine configuration: which crates each rule covers and the built-in
/// module allowlists. Paths are workspace-relative with `/` separators.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose non-test `src/` may not mention `HashMap`/`HashSet`
    /// without an allow annotation (the report/snapshot-byte set).
    pub hash_crates: Vec<String>,
    /// Path prefixes exempt from the `wall-clock` rule (timing layers).
    pub wallclock_allow: Vec<String>,
    /// Path prefixes where RNG construction is legitimate (the
    /// key-derivation sites).
    pub rng_allow: Vec<String>,
    /// Path prefixes allowed to spawn raw threads.
    pub spawn_allow: Vec<String>,
    /// Path prefixes whose `Ordering::` uses are governed by a
    /// module-level ordering contract instead of per-site comments.
    pub ordering_allow: Vec<String>,
    /// Crates whose library paths ban `.unwrap()`/`.expect()`/`panic!`.
    pub panic_crates: Vec<String>,
    /// The one file allowed to declare `b"DAPC…"` magics.
    pub registry_path: String,
}

impl Config {
    /// The workspace contract as shipped. Every allowlist entry here is
    /// a *module-level* exemption with a documented contract; per-site
    /// exemptions use `dapc-allow` annotations instead.
    pub fn workspace() -> Config {
        Config {
            // Everything that feeds report or snapshot bytes. `obs` is
            // exempt by module contract: its registry is unordered by
            // design and every exposure sorts at snapshot time.
            hash_crates: [
                "graph", "conc", "local", "ilp", "decomp", "core", "runtime", "chaos", "lower",
                "serve", "bench",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            // Timing layers: observability histograms and the bench /
            // tables walls. Everything else annotates per site.
            wallclock_allow: vec!["crates/obs/".into(), "crates/bench/".into()],
            // The single key-derivation site: SolveConfig::rng derives
            // every solver stream from the config seed / JobKey.
            rng_allow: vec!["crates/core/src/engine/config.rs".into()],
            // The executor owns its worker threads.
            spawn_allow: vec!["crates/exec/".into()],
            // Modules with a documented ordering contract at the top of
            // the file (deque/park READMEs + module docs; obs is
            // relaxed-everywhere by design).
            ordering_allow: vec![
                "crates/exec/src/deque.rs".into(),
                "crates/exec/src/park.rs".into(),
                "crates/obs/src/lib.rs".into(),
            ],
            panic_crates: vec!["runtime".into(), "serve".into()],
            registry_path: "crates/core/src/snapmagic.rs".into(),
        }
    }

    fn path_allowed(list: &[String], path: &str) -> bool {
        list.iter().any(|p| path.starts_with(p.as_str()))
    }
}

/// Context handed to every rule.
pub struct FileCtx<'a> {
    pub path: &'a str,
    pub crate_name: &'a str,
    pub role: FileRole,
    pub scan: &'a Scan,
    pub config: &'a Config,
}

impl<'a> FileCtx<'a> {
    /// Is a violation of `rule` at `line` suppressed by a
    /// `dapc-allow(rule): reason` annotation? The annotation may sit on
    /// the violating line itself or on the comment-only line block
    /// immediately above.
    fn allowed(&self, rule: &str, line: u32) -> bool {
        if has_allow(&self.scan.comment_text_on_line(line), rule) {
            return true;
        }
        let mut l = line;
        while l > 1 && self.scan.line_is_comment_only(l - 1) {
            l -= 1;
            if has_allow(&self.scan.comment_text_on_line(l), rule) {
                return true;
            }
        }
        false
    }

    fn push(&self, out: &mut Vec<Finding>, rule: &'static str, offset: usize, message: String) {
        let line = self.scan.line_of(offset);
        if self.scan.in_test(offset) || self.allowed(rule, line) {
            return;
        }
        out.push(Finding {
            file: self.path.to_string(),
            line,
            rule,
            message,
        });
    }
}

/// Does this comment text carry a well-formed `dapc-allow(rule): reason`
/// for `rule`? A malformed allow (missing reason) never suppresses.
fn has_allow(comment: &str, rule: &str) -> bool {
    let mut rest = comment;
    while let Some(pos) = rest.find("dapc-allow(") {
        rest = &rest[pos + "dapc-allow(".len()..];
        let Some(close) = rest.find(')') else {
            return false;
        };
        let named = rest[..close].trim();
        let after = &rest[close + 1..];
        if named == rule {
            // Require `: non-empty reason`.
            if let Some(stripped) = after.trim_start().strip_prefix(':') {
                let reason = stripped.lines().next().unwrap_or("").trim();
                if !reason.is_empty() {
                    return true;
                }
            }
            return false;
        }
        rest = after;
    }
    false
}

/// Word-boundary occurrences of identifier `name` in the blanked code.
fn ident_sites(code: &[u8], name: &str) -> Vec<usize> {
    let needle = name.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_sub(code, needle, from) {
        from = pos + 1;
        let before_ok = pos == 0 || !is_ident_byte(code[pos - 1]);
        let after = pos + needle.len();
        let after_ok = after >= code.len() || !is_ident_byte(code[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Skip ASCII whitespace forward from `i`.
fn skip_ws(code: &[u8], mut i: usize) -> usize {
    while i < code.len() && (code[i] as char).is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// All rule names, in report order. Kept in one place so the CLI, the
/// README and the tests can enumerate them.
pub const RULE_NAMES: &[&str] = &[
    "hash-iter",
    "wall-clock",
    "rng",
    "thread-spawn",
    "ordering",
    "forbid-unsafe",
    "panic",
    "magic-registry",
];

/// Run every applicable rule over one file.
pub fn check_file(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    rule_forbid_unsafe(ctx, out);
    if ctx.role == FileRole::VendorRoot {
        return;
    }
    rule_hash_iter(ctx, out);
    rule_wall_clock(ctx, out);
    rule_rng(ctx, out);
    rule_thread_spawn(ctx, out);
    rule_ordering(ctx, out);
    rule_panic(ctx, out);
    rule_magic_registry(ctx, out);
}

/// `hash-iter`: `HashMap`/`HashSet` may not appear in the non-test
/// source of a crate that produces report or snapshot bytes. Their
/// iteration order is seeded per process, so any leak into an output
/// byte breaks the byte-identity contract; use `BTreeMap`/`BTreeSet` or
/// sort explicitly, or annotate a lookup-only use.
fn rule_hash_iter(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.config.hash_crates.iter().any(|c| c == ctx.crate_name) {
        return;
    }
    for name in ["HashMap", "HashSet"] {
        for pos in ident_sites(&ctx.scan.code, name) {
            ctx.push(
                out,
                "hash-iter",
                pos,
                format!(
                    "`{name}` in a report/snapshot-byte crate: iteration order is \
                     process-seeded; use BTreeMap/BTreeSet or sort explicitly \
                     (or `// dapc-allow(hash-iter): reason` a lookup-only use)"
                ),
            );
        }
    }
}

/// `wall-clock`: `Instant::now` / `SystemTime` only in the timing
/// layers (obs, bench) or behind a per-site annotation. Wall-clock
/// reads feed `wall_ms`-style fields that the identity contracts
/// explicitly exclude — every other use risks leaking nondeterminism.
fn rule_wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if Config::path_allowed(&ctx.config.wallclock_allow, ctx.path) {
        return;
    }
    let code = &ctx.scan.code;
    for pos in ident_sites(code, "Instant") {
        let mut j = skip_ws(code, pos + "Instant".len());
        if code.get(j) == Some(&b':') && code.get(j + 1) == Some(&b':') {
            j = skip_ws(code, j + 2);
            if code[j..].starts_with(b"now") {
                ctx.push(
                    out,
                    "wall-clock",
                    pos,
                    "`Instant::now` outside the obs/bench timing layers; \
                     annotate with `// dapc-allow(wall-clock): reason` if this \
                     feeds an identity-exempt timing field"
                        .into(),
                );
            }
        }
    }
    for pos in ident_sites(code, "SystemTime") {
        ctx.push(
            out,
            "wall-clock",
            pos,
            "`SystemTime` outside the obs/bench timing layers".into(),
        );
    }
}

/// `rng`: RNG construction (`seed_from_u64`, `from_seed`,
/// `from_entropy`, `thread_rng`, `from_os_rng`) only at the
/// key-derivation sites. Every solver stream must derive from a
/// `JobKey`/config seed, or byte-identity across worker counts breaks.
fn rule_rng(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if Config::path_allowed(&ctx.config.rng_allow, ctx.path) {
        return;
    }
    for name in [
        "seed_from_u64",
        "from_seed",
        "from_entropy",
        "thread_rng",
        "from_os_rng",
    ] {
        for pos in ident_sites(&ctx.scan.code, name) {
            ctx.push(
                out,
                "rng",
                pos,
                format!(
                    "RNG construction (`{name}`) outside the key-derivation \
                     sites; derive streams from a JobKey/config seed or \
                     annotate with `// dapc-allow(rng): reason`"
                ),
            );
        }
    }
}

/// `thread-spawn`: raw `thread::spawn` only inside `dapc-exec` (the
/// process-wide executor) or behind an annotation naming the supervisor
/// contract. Stray threads bypass the executor's panic propagation and
/// determinism story.
fn rule_thread_spawn(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if Config::path_allowed(&ctx.config.spawn_allow, ctx.path) {
        return;
    }
    let code = &ctx.scan.code;
    for pos in ident_sites(code, "thread") {
        let mut j = skip_ws(code, pos + "thread".len());
        if code.get(j) == Some(&b':') && code.get(j + 1) == Some(&b':') {
            j = skip_ws(code, j + 2);
            if code[j..].starts_with(b"spawn") {
                ctx.push(
                    out,
                    "thread-spawn",
                    pos,
                    "`thread::spawn` outside dapc-exec; run work on the \
                     executor, or `// dapc-allow(thread-spawn): reason` a \
                     supervised service thread"
                        .into(),
                );
            }
        }
    }
}

/// `ordering`: every `Ordering::` atomic access needs an
/// `// ordering:` justification comment on the same line or the
/// comment block immediately above, unless the whole module is
/// allowlisted as carrying a documented ordering contract.
fn rule_ordering(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if Config::path_allowed(&ctx.config.ordering_allow, ctx.path) {
        return;
    }
    let code = &ctx.scan.code;
    for pos in ident_sites(code, "Ordering") {
        let j = skip_ws(code, pos + "Ordering".len());
        if !(code.get(j) == Some(&b':') && code.get(j + 1) == Some(&b':')) {
            continue;
        }
        if ctx.scan.in_test(pos) {
            continue;
        }
        let line = ctx.scan.line_of(pos);
        let mut justified = ctx.scan.comment_text_on_line(line).contains("ordering:");
        let mut l = line;
        while !justified && l > 1 && ctx.scan.line_is_comment_only(l - 1) {
            l -= 1;
            justified = ctx.scan.comment_text_on_line(l).contains("ordering:");
        }
        if !justified {
            ctx.push(
                out,
                "ordering",
                pos,
                "atomic `Ordering::` without an `// ordering:` justification \
                 comment (same line or the comment block above)"
                    .into(),
            );
        }
    }
}

/// `forbid-unsafe`: every crate root (lib and bin, vendored stand-ins
/// included) must carry `#![forbid(unsafe_code)]`.
fn rule_forbid_unsafe(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !matches!(
        ctx.role,
        FileRole::CrateRoot | FileRole::BinRoot | FileRole::VendorRoot
    ) {
        return;
    }
    if find_sub(&ctx.scan.code, b"#![forbid(unsafe_code)]", 0).is_none() {
        out.push(Finding {
            file: ctx.path.to_string(),
            line: 1,
            rule: "forbid-unsafe",
            message: "crate root is missing `#![forbid(unsafe_code)]`".into(),
        });
    }
}

/// `panic`: `.unwrap()` / `.expect(` / `panic!` banned in the library
/// paths of the covered crates (tests and benches are exempt).
/// I/O-adjacent fallibility must flow through the `exit` triage;
/// provably-infallible sites annotate with `dapc-allow(panic)`.
fn rule_panic(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.config.panic_crates.iter().any(|c| c == ctx.crate_name) {
        return;
    }
    let code = &ctx.scan.code;
    for name in ["unwrap", "expect"] {
        for pos in ident_sites(code, name) {
            let preceded_by_dot = pos > 0 && code[..pos].trim_ascii_end().ends_with(b".");
            let j = skip_ws(code, pos + name.len());
            let called = code.get(j) == Some(&b'(');
            if preceded_by_dot && called {
                ctx.push(
                    out,
                    "panic",
                    pos,
                    format!(
                        "`.{name}()` in a library path; propagate a Result \
                         through the exit triage, or \
                         `// dapc-allow(panic): reason` a provably-infallible \
                         site"
                    ),
                );
            }
        }
    }
    for pos in ident_sites(code, "panic") {
        let j = skip_ws(code, pos + "panic".len());
        if code.get(j) == Some(&b'!') {
            ctx.push(
                out,
                "panic",
                pos,
                "`panic!` in a library path; return an error through the exit \
                 triage instead"
                    .into(),
            );
        }
    }
}

/// `magic-registry`: every `b"DAPC…"` byte-string magic is declared
/// exactly once, in the central registry module; the registry itself is
/// checked for 8-byte length, `DAPC` prefix, version byte, seal
/// consistency and uniqueness (see [`check_registry`]).
fn rule_magic_registry(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.path == ctx.config.registry_path {
        check_registry(ctx, out);
        return;
    }
    for lit in &ctx.scan.strings {
        // dapc-allow(magic-registry): the linter's own prefix needle, not a format magic
        if lit.kind.is_byte_str() && lit.bytes.starts_with(b"DAPC") {
            ctx.push(
                out,
                "magic-registry",
                lit.start,
                format!(
                    "snapshot magic {:?} declared outside the registry \
                     ({}); import the constant instead",
                    String::from_utf8_lossy(&lit.bytes),
                    ctx.config.registry_path
                ),
            );
        }
    }
}

/// Registry-module consistency: every magic is 8 bytes, `DAPC`-prefixed
/// with a known version byte, unique (both the full magic and the
/// 3-byte format tag), and its declared `sealed:` flag matches the
/// format-version convention (`\x02`+ formats carry an FNV seal, `\x01`
/// formats do not).
pub fn check_registry(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let magics: Vec<_> = ctx
        .scan
        .strings
        .iter()
        // dapc-allow(magic-registry): the linter's own prefix needle, not a format magic
        .filter(|l| l.kind.is_byte_str() && l.bytes.starts_with(b"DAPC"))
        .collect();
    if magics.is_empty() {
        out.push(Finding {
            file: ctx.path.to_string(),
            line: 1,
            rule: "magic-registry",
            message: "registry module declares no `b\"DAPC…\"` magics".into(),
        });
        return;
    }
    let mut seen: Vec<&[u8]> = Vec::new();
    let mut seen_tags: Vec<&[u8]> = Vec::new();
    for (idx, lit) in magics.iter().enumerate() {
        let m = &lit.bytes;
        let display = String::from_utf8_lossy(m).into_owned();
        if m.len() != 8 {
            ctx.push(
                out,
                "magic-registry",
                lit.start,
                format!("magic {display:?} is {} bytes, want 8", m.len()),
            );
            continue;
        }
        let version = m[7];
        if !(1..=2).contains(&version) {
            ctx.push(
                out,
                "magic-registry",
                lit.start,
                format!("magic {display:?} has version byte {version:#04x}, want 0x01/0x02"),
            );
        }
        if seen.contains(&m.as_slice()) {
            ctx.push(
                out,
                "magic-registry",
                lit.start,
                format!("magic {display:?} declared twice in the registry"),
            );
        }
        let tag = &m[4..7];
        if seen_tags.contains(&tag) {
            ctx.push(
                out,
                "magic-registry",
                lit.start,
                format!(
                    "format tag {:?} reused by two registry entries",
                    String::from_utf8_lossy(tag)
                ),
            );
        }
        seen.push(m.as_slice());
        seen_tags.push(tag);

        // Seal consistency: between this literal and the next one the
        // entry must declare `sealed: true` iff the version is >= 2.
        // Relies on the registry's documented field order (bytes before
        // sealed), which the registry module pins with a comment.
        let entry_end = magics
            .get(idx + 1)
            .map(|next| next.start)
            .unwrap_or(ctx.scan.code.len());
        let entry_code = &ctx.scan.code[lit.end..entry_end];
        let declared_sealed = find_sub(entry_code, b"sealed: true", 0).is_some();
        let declared_unsealed = find_sub(entry_code, b"sealed: false", 0).is_some();
        let want_sealed = version >= 2;
        if !(declared_sealed || declared_unsealed) {
            ctx.push(
                out,
                "magic-registry",
                lit.start,
                format!("magic {display:?} entry declares no `sealed:` flag"),
            );
        } else if declared_sealed != want_sealed {
            ctx.push(
                out,
                "magic-registry",
                lit.start,
                format!(
                    "magic {display:?} (version {version:#04x}) declares `sealed: {}`, \
                     but `\\x02`+ formats carry an FNV seal and `\\x01` formats do not",
                    declared_sealed
                ),
            );
        }
    }
}
