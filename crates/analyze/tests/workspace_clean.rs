//! The gate, as a test: the shipped workspace must be clean under the
//! shipped config, and the central magic registry must be present and
//! consistent. A regression here is exactly what the CI job would
//! catch — this test catches it at `cargo test` time too.

use dapc_analyze::{analyze_workspace, find_workspace_root, Config};

#[test]
fn workspace_is_clean_under_the_shipped_config() {
    let here = std::env::current_dir().expect("cwd");
    let root = find_workspace_root(&here).expect("workspace root above the test cwd");
    let findings = analyze_workspace(&root, &Config::workspace());
    assert!(
        findings.is_empty(),
        "dapc-analyze found violations:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn a_seeded_violation_fails_the_gate() {
    // The CI job's self-test: the analyzer must actually be able to
    // fail. Seed one violation of each headline rule into a synthetic
    // module of a covered crate and check every rule fires.
    let src = "\
        fn f() {\n\
            let m = std::collections::HashMap::new();\n\
            let t = std::time::Instant::now();\n\
            std::thread::spawn(|| {});\n\
            let r = StdRng::seed_from_u64(7);\n\
            let v: Option<u32> = None;\n\
            v.unwrap();\n\
        }\n";
    let findings = dapc_analyze::analyze_source(
        "crates/runtime/src/seeded.rs",
        "runtime",
        dapc_analyze::FileRole::Module,
        src.as_bytes(),
        &Config::workspace(),
    );
    let rules: std::collections::BTreeSet<_> = findings.iter().map(|f| f.rule).collect();
    for rule in ["hash-iter", "wall-clock", "thread-spawn", "rng", "panic"] {
        assert!(rules.contains(rule), "seeded {rule} violation did not fire");
    }
}
