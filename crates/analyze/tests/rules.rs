//! Per-rule fixtures: one positive (the rule fires) and one negative
//! (allowlist, annotation, or out-of-scope crate) for every rule the
//! engine ships, plus the suppression-grammar corner cases.

use dapc_analyze::{analyze_source, Config, FileRole, Finding};

fn run(path: &str, krate: &str, role: FileRole, src: &str) -> Vec<Finding> {
    analyze_source(path, krate, role, src.as_bytes(), &Config::workspace())
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- hash-iter

#[test]
fn hash_iter_fires_in_report_crates() {
    let f = run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        "fn f() { let m = std::collections::HashMap::new(); }\n",
    );
    assert_eq!(rules_of(&f), ["hash-iter"]);
    assert_eq!(f[0].line, 1);
}

#[test]
fn hash_iter_ignores_out_of_scope_crates_and_annotations() {
    // obs is exempt by module contract.
    let f = run(
        "crates/obs/src/x.rs",
        "obs",
        FileRole::Module,
        "fn f() { let m = std::collections::HashMap::new(); }\n",
    );
    assert!(f.is_empty());
    // An annotated lookup-only use is exempt anywhere.
    let f = run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        "// dapc-allow(hash-iter): lookup-only memo, never iterated\n\
         fn f() { let m = std::collections::HashMap::new(); }\n",
    );
    assert!(f.is_empty());
}

#[test]
fn hash_iter_ignores_strings_comments_and_tests() {
    let src = "fn f() { let s = \"HashMap\"; } // HashMap\n\
               #[cfg(test)]\nmod tests {\n    fn g() { let m = std::collections::HashMap::new(); }\n}\n";
    let f = run("crates/runtime/src/x.rs", "runtime", FileRole::Module, src);
    assert!(f.is_empty());
}

// ---------------------------------------------------------------- wall-clock

#[test]
fn wall_clock_fires_outside_timing_layers() {
    let f = run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        "fn f() { let t = std::time::Instant::now(); }\n",
    );
    assert_eq!(rules_of(&f), ["wall-clock"]);
}

#[test]
fn wall_clock_allows_obs_and_annotations() {
    let src = "fn f() { let t = std::time::Instant::now(); }\n";
    assert!(run("crates/obs/src/x.rs", "obs", FileRole::Module, src).is_empty());
    let annotated = "// dapc-allow(wall-clock): telemetry only\n\
                     fn f() { let t = std::time::Instant::now(); }\n";
    assert!(run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        annotated
    )
    .is_empty());
    // `Instant` alone (no ::now) is not a violation.
    let ty_only = "fn f(deadline: std::time::Instant) {}\n";
    assert!(run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        ty_only
    )
    .is_empty());
}

// ---------------------------------------------------------------- rng

#[test]
fn rng_fires_outside_key_derivation_sites() {
    let f = run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        "fn f() { let r = StdRng::seed_from_u64(7); }\n",
    );
    assert_eq!(rules_of(&f), ["rng"]);
}

#[test]
fn rng_allows_the_derivation_module() {
    let f = run(
        "crates/core/src/engine/config.rs",
        "core",
        FileRole::Module,
        "fn f() { let r = StdRng::seed_from_u64(7); }\n",
    );
    assert!(f.is_empty());
}

// ---------------------------------------------------------------- thread-spawn

#[test]
fn thread_spawn_fires_outside_exec() {
    let f = run(
        "crates/serve/src/x.rs",
        "serve",
        FileRole::Module,
        "fn f() { std::thread::spawn(|| {}); }\n",
    );
    assert_eq!(rules_of(&f), ["thread-spawn"]);
}

#[test]
fn thread_spawn_allows_exec_and_annotations() {
    let src = "fn f() { std::thread::spawn(|| {}); }\n";
    assert!(run("crates/exec/src/x.rs", "exec", FileRole::Module, src).is_empty());
    let annotated = "// dapc-allow(thread-spawn): supervised service thread\n\
                     fn f() { std::thread::spawn(|| {}); }\n";
    assert!(run(
        "crates/serve/src/x.rs",
        "serve",
        FileRole::Module,
        annotated
    )
    .is_empty());
}

// ---------------------------------------------------------------- ordering

#[test]
fn ordering_requires_a_justification_comment() {
    let f = run(
        "crates/core/src/x.rs",
        "core",
        FileRole::Module,
        "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n",
    );
    assert_eq!(rules_of(&f), ["ordering"]);
}

#[test]
fn ordering_accepts_same_line_above_line_and_allowlisted_modules() {
    let same_line =
        "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); } // ordering: Relaxed — counter\n";
    assert!(run("crates/core/src/x.rs", "core", FileRole::Module, same_line).is_empty());
    let above = "fn f(a: &AtomicU64) {\n    // ordering: Relaxed — counter, nothing synchronises on it\n    a.load(Ordering::Relaxed);\n}\n";
    assert!(run("crates/core/src/x.rs", "core", FileRole::Module, above).is_empty());
    let bare = "fn f(a: &AtomicU64) { a.load(Ordering::Relaxed); }\n";
    assert!(run("crates/exec/src/deque.rs", "exec", FileRole::Module, bare).is_empty());
}

// ---------------------------------------------------------------- forbid-unsafe

#[test]
fn forbid_unsafe_fires_on_bare_crate_roots() {
    let f = run(
        "crates/serve/src/lib.rs",
        "serve",
        FileRole::CrateRoot,
        "pub fn f() {}\n",
    );
    assert_eq!(rules_of(&f), ["forbid-unsafe"]);
    // Bin roots too.
    let f = run(
        "crates/serve/src/bin/x.rs",
        "serve",
        FileRole::BinRoot,
        "fn main() {}\n",
    );
    assert_eq!(rules_of(&f), ["forbid-unsafe"]);
}

#[test]
fn forbid_unsafe_passes_attributed_roots_and_skips_modules() {
    let f = run(
        "crates/serve/src/lib.rs",
        "serve",
        FileRole::CrateRoot,
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    );
    assert!(f.is_empty());
    // Plain modules never need the attribute.
    let f = run(
        "crates/serve/src/x.rs",
        "serve",
        FileRole::Module,
        "pub fn f() {}\n",
    );
    assert!(f.is_empty());
}

// ---------------------------------------------------------------- panic

#[test]
fn panic_fires_on_unwrap_expect_and_panic_in_covered_crates() {
    let f = run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
         fn g(x: Option<u32>) -> u32 { x.expect(\"msg\") }\n\
         fn h() { panic!(\"boom\"); }\n",
    );
    assert_eq!(rules_of(&f), ["panic", "panic", "panic"]);
}

#[test]
fn panic_skips_uncovered_crates_tests_and_annotated_sites() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    // core is not a panic-rule crate.
    assert!(run("crates/core/src/x.rs", "core", FileRole::Module, src).is_empty());
    // Test modules are exempt.
    let test_src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u32>) -> u32 { x.unwrap() }\n}\n";
    assert!(run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        test_src
    )
    .is_empty());
    // An annotated provably-infallible site is exempt.
    let annotated = "fn f(x: Option<u32>) -> u32 {\n    // dapc-allow(panic): checked non-empty above\n    x.unwrap()\n}\n";
    assert!(run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        annotated
    )
    .is_empty());
    // `expect` as a method *definition* name is not a call site.
    let defn = "fn expect(x: u32) -> u32 { x }\n";
    assert!(run("crates/runtime/src/x.rs", "runtime", FileRole::Module, defn).is_empty());
}

// ---------------------------------------------------------------- allow grammar

#[test]
fn allow_without_a_reason_does_not_suppress() {
    let src = "// dapc-allow(panic):\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let f = run("crates/runtime/src/x.rs", "runtime", FileRole::Module, src);
    assert_eq!(rules_of(&f), ["panic"]);
}

#[test]
fn allow_for_one_rule_does_not_suppress_another() {
    let src = "// dapc-allow(hash-iter): wrong rule\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    let f = run("crates/runtime/src/x.rs", "runtime", FileRole::Module, src);
    assert_eq!(rules_of(&f), ["panic"]);
}

// ---------------------------------------------------------------- magic-registry

#[test]
fn magic_outside_the_registry_fires() {
    let f = run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        "const M: &[u8; 8] = b\"DAPCXYZ\\x01\";\n",
    );
    assert_eq!(rules_of(&f), ["magic-registry"]);
}

#[test]
fn non_magic_byte_strings_do_not_fire() {
    let f = run(
        "crates/runtime/src/x.rs",
        "runtime",
        FileRole::Module,
        "const M: &[u8; 4] = b\"PNG\\x89\";\nconst S: &str = \"DAPCXYZ\";\n",
    );
    assert!(f.is_empty());
}

fn run_registry(src: &str) -> Vec<Finding> {
    run(
        "crates/core/src/snapmagic.rs",
        "core",
        FileRole::Module,
        src,
    )
}

#[test]
fn consistent_registry_is_clean() {
    let src = "pub static A: Magic = Magic { bytes: b\"DAPCAAA\\x01\", sealed: false };\n\
               pub static B: Magic = Magic { bytes: b\"DAPCBBB\\x02\", sealed: true };\n";
    assert!(run_registry(src).is_empty());
}

#[test]
fn registry_rejects_bad_entries() {
    // Wrong length.
    let f =
        run_registry("pub static A: Magic = Magic { bytes: b\"DAPCAA\\x01\", sealed: false };\n");
    assert_eq!(rules_of(&f), ["magic-registry"]);
    // Unknown version byte.
    let f =
        run_registry("pub static A: Magic = Magic { bytes: b\"DAPCAAA\\x03\", sealed: true };\n");
    assert!(!f.is_empty());
    // Duplicate magic and reused tag.
    let f = run_registry(
        "pub static A: Magic = Magic { bytes: b\"DAPCAAA\\x01\", sealed: false };\n\
         pub static B: Magic = Magic { bytes: b\"DAPCAAA\\x01\", sealed: false };\n",
    );
    assert!(f.iter().any(|x| x.message.contains("declared twice")));
    // Seal flag contradicting the version convention.
    let f =
        run_registry("pub static A: Magic = Magic { bytes: b\"DAPCAAA\\x02\", sealed: false };\n");
    assert!(f.iter().any(|x| x.message.contains("sealed")));
    // Entry missing the sealed flag entirely.
    let f = run_registry("pub static A: &[u8; 8] = b\"DAPCAAA\\x01\";\n");
    assert!(f.iter().any(|x| x.message.contains("no `sealed:` flag")));
    // An empty registry module is itself a violation.
    let f = run_registry("pub struct Magic;\n");
    assert_eq!(rules_of(&f), ["magic-registry"]);
}
