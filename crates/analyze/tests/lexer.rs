//! Edge-case tests for the comment/string-aware lexer: everything a
//! rule must not look inside has to be blanked from the code view, and
//! everything it needs (lines, test spans, decoded magic bytes) has to
//! survive.

use dapc_analyze::lexer::{find_sub, scan, StrKind};

fn code_has(src: &str, needle: &str) -> bool {
    let s = scan(src.as_bytes());
    find_sub(&s.code, needle.as_bytes(), 0).is_some()
}

#[test]
fn line_comments_are_blanked() {
    assert!(!code_has("let x = 1; // HashMap in a comment\n", "HashMap"));
    assert!(code_has("let map = HashMap::new(); // fine\n", "HashMap"));
}

#[test]
fn block_comments_nest() {
    let src = "/* outer /* inner HashMap */ still comment */ let y = 2;";
    assert!(!code_has(src, "HashMap"));
    assert!(code_has(src, "let y"));
}

#[test]
fn string_contents_are_blanked() {
    assert!(!code_has(
        r#"let s = "Instant::now inside a string";"#,
        "Instant"
    ));
    assert!(!code_has(
        r#"let s = "escaped \" quote HashMap";"#,
        "HashMap"
    ));
}

#[test]
fn raw_strings_with_hashes_are_blanked() {
    let src = r####"let s = r##"thread::spawn "quoted" inside"##; let t = 1;"####;
    assert!(!code_has(src, "spawn"));
    assert!(code_has(src, "let t"));
}

#[test]
fn raw_identifiers_are_not_raw_strings() {
    // `r#type` must lex as an identifier, not open a raw string that
    // swallows the rest of the file.
    let src = "fn f(r#type: u32) -> u32 { r#type }\nlet m = HashMap::new();";
    assert!(code_has(src, "HashMap"));
}

#[test]
fn char_literals_vs_lifetimes() {
    // 'a' is a char literal (blanked); &'a str is a lifetime (kept).
    let src = "fn f<'a>(x: &'a str) -> char { 'H' }";
    let s = scan(src.as_bytes());
    assert!(find_sub(&s.code, b"'a>", 0).is_some());
    let chars: Vec<_> = s
        .strings
        .iter()
        .filter(|l| l.kind == StrKind::Char)
        .collect();
    assert_eq!(chars.len(), 1);
    assert_eq!(chars[0].bytes, b"H");
}

#[test]
fn byte_string_escapes_decode() {
    let src = r#"const M: &[u8; 8] = b"DAPC\x41BC\x02";"#;
    let s = scan(src.as_bytes());
    let lits: Vec<_> = s.strings.iter().filter(|l| l.kind.is_byte_str()).collect();
    assert_eq!(lits.len(), 1);
    assert_eq!(lits[0].bytes, b"DAPCABC\x02");
}

#[test]
fn unicode_escapes_decode() {
    let src = r#"let s = "\u{41}\n";"#;
    let s = scan(src.as_bytes());
    assert_eq!(s.strings.len(), 1);
    assert_eq!(s.strings[0].bytes, b"A\n");
}

#[test]
fn blanking_preserves_length_and_newlines() {
    let src = "let a = \"two\nlines\"; /* c\nc */ let b = 1;\n";
    let s = scan(src.as_bytes());
    assert_eq!(s.code.len(), src.len());
    let src_newlines = src.bytes().filter(|&b| b == b'\n').count();
    let code_newlines = s.code.iter().filter(|&&b| b == b'\n').count();
    assert_eq!(src_newlines, code_newlines);
}

#[test]
fn line_numbers_are_one_indexed() {
    let src = "line1\nline2\nline3";
    let s = scan(src.as_bytes());
    assert_eq!(s.line_of(0), 1);
    assert_eq!(s.line_of(6), 2);
    assert_eq!(s.line_of(12), 3);
}

#[test]
fn cfg_test_modules_are_test_spans() {
    let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn lib2() {}\n";
    let s = scan(src.as_bytes());
    let helper = find_sub(src.as_bytes(), b"helper", 0).unwrap();
    let lib2 = find_sub(src.as_bytes(), b"lib2", 0).unwrap();
    assert!(s.in_test(helper));
    assert!(!s.in_test(0));
    assert!(!s.in_test(lib2));
}

#[test]
fn test_fns_are_test_spans() {
    let src = "fn lib() {}\n#[test]\nfn check() { let x = 1; }\nfn lib2() {}\n";
    let s = scan(src.as_bytes());
    let inside = find_sub(src.as_bytes(), b"let x", 0).unwrap();
    let lib2 = find_sub(src.as_bytes(), b"lib2", 0).unwrap();
    assert!(s.in_test(inside));
    assert!(!s.in_test(lib2));
}

#[test]
fn comment_only_lines_and_text() {
    let src = "// just a comment\nlet x = 1; // trailing\nlet y = 2;\n";
    let s = scan(src.as_bytes());
    assert!(s.line_is_comment_only(1));
    assert!(!s.line_is_comment_only(2));
    assert!(!s.line_is_comment_only(3));
    assert!(s.comment_text_on_line(1).contains("just a comment"));
    assert!(s.comment_text_on_line(2).contains("trailing"));
    assert_eq!(s.comment_text_on_line(3), "");
}
