//! Empirical validation of the Appendix A bounds: simulated tails never
//! exceed the certified ones (up to sampling noise).

use dapc_conc::bounds;
use dapc_conc::dist::{bernoulli, Geometric};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn lemma_a1_upper_tail_certificate() {
    let mut rng = StdRng::seed_from_u64(1);
    let (n, p, trials) = (600usize, 0.08f64, 3000usize);
    let mu = n as f64 * p;
    let sums: Vec<f64> = (0..trials)
        .map(|_| (0..n).filter(|_| bernoulli(&mut rng, p)).count() as f64)
        .collect();
    for delta in [0.25, 0.5, 1.0] {
        let emp = sums.iter().filter(|&&s| s > (1.0 + delta) * mu).count() as f64 / trials as f64;
        let bound = bounds::chernoff_upper(mu, delta);
        assert!(
            emp <= bound + 3.0 * (bound.max(1e-6) / trials as f64).sqrt() + 0.005,
            "delta {delta}: empirical {emp} > certificate {bound}"
        );
    }
}

#[test]
fn lemma_a1_lower_tail_certificate() {
    let mut rng = StdRng::seed_from_u64(2);
    let (n, p, trials) = (600usize, 0.08f64, 3000usize);
    let mu = n as f64 * p;
    let sums: Vec<f64> = (0..trials)
        .map(|_| (0..n).filter(|_| bernoulli(&mut rng, p)).count() as f64)
        .collect();
    for delta in [0.25, 0.5, 0.9] {
        let emp = sums.iter().filter(|&&s| s < (1.0 - delta) * mu).count() as f64 / trials as f64;
        let bound = bounds::chernoff_lower(mu, delta);
        assert!(
            emp <= bound + 3.0 * (bound.max(1e-6) / trials as f64).sqrt() + 0.005,
            "delta {delta}: empirical {emp} > certificate {bound}"
        );
    }
}

#[test]
fn lemma_a2_geometric_sum_certificate() {
    // Sum of n geometric(p) variables; Lemma A.2 bounds Pr[X > μ + δn].
    let mut rng = StdRng::seed_from_u64(3);
    let (n, p, trials) = (200u64, 0.5f64, 4000usize);
    let d = Geometric::new(p);
    let mu = n as f64 / p;
    let sums: Vec<f64> = (0..trials)
        .map(|_| (0..n).map(|_| d.sample(&mut rng)).sum::<u64>() as f64)
        .collect();
    for delta in [1.5f64, 2.0, 3.0] {
        let emp =
            sums.iter().filter(|&&s| s > mu + delta * n as f64).count() as f64 / trials as f64;
        let bound = bounds::geometric_sum_upper(n, p, delta);
        assert!(
            emp <= bound + 0.005,
            "delta {delta}: empirical {emp} > certificate {bound}"
        );
    }
}

#[test]
fn bounded_dependence_bound_covers_correlated_sums() {
    // Build deliberately correlated 0-1 variables with dependency degree 2
    // (sliding windows over iid bits) and check Lemma A.3's certificate.
    let mut rng = StdRng::seed_from_u64(4);
    let (n, trials) = (900usize, 2000usize);
    let p = 0.2f64;
    let mut tails = [0usize; 3];
    let deltas = [0.5f64, 1.0, 1.5];
    let mu = (n as f64 - 1.0) * p * p; // E[Σ b_i b_{i+1}]
    for _ in 0..trials {
        let bits: Vec<bool> = (0..n).map(|_| bernoulli(&mut rng, p)).collect();
        let x = bits.windows(2).filter(|w| w[0] && w[1]).count() as f64;
        for (i, &delta) in deltas.iter().enumerate() {
            if x >= (1.0 + delta) * mu {
                tails[i] += 1;
            }
        }
    }
    for (i, &delta) in deltas.iter().enumerate() {
        let emp = tails[i] as f64 / trials as f64;
        let bound = bounds::chernoff_bounded_dependence(mu, delta, 2.0);
        assert!(
            emp <= bound + 0.01,
            "delta {delta}: empirical {emp} > bounded-dependence certificate {bound}"
        );
    }
}
