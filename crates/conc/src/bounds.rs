//! The concentration bounds of Appendix A, as numeric certificates.
//!
//! Each function evaluates the right-hand side of the corresponding lemma.
//! Experiments use these to print "theory bound" columns next to measured
//! tail frequencies, and tests check that empirical tails never exceed the
//! certified bounds (up to sampling noise).

/// Lemma A.1 (Chernoff, upper tail): for independent 0–1 summands with mean
/// `μ`, `Pr[X > (1+δ)μ] ≤ exp(−δ²μ/(2+δ))`, `δ ≥ 0`.
///
/// # Panics
///
/// Panics if `delta < 0` or `mu < 0`.
pub fn chernoff_upper(mu: f64, delta: f64) -> f64 {
    assert!(delta >= 0.0, "delta must be non-negative");
    assert!(mu >= 0.0, "mu must be non-negative");
    (-delta * delta * mu / (2.0 + delta)).exp().min(1.0)
}

/// Lemma A.1 (Chernoff, lower tail): `Pr[X < (1−δ)μ] ≤ exp(−δ²μ/2)`,
/// `0 ≤ δ ≤ 1`.
///
/// # Panics
///
/// Panics unless `0 <= delta <= 1` and `mu >= 0`.
pub fn chernoff_lower(mu: f64, delta: f64) -> f64 {
    assert!((0.0..=1.0).contains(&delta), "delta must be in [0, 1]");
    assert!(mu >= 0.0, "mu must be non-negative");
    (-delta * delta * mu / 2.0).exp().min(1.0)
}

/// Lemma A.2 (sum of geometrics): for `n` independent `Geometric(p)`
/// variables with sum mean `μ = n/p` and `δ > 1/p − 1`,
/// `Pr[X > μ + δn] ≤ exp(−p²δn/6)`.
///
/// # Panics
///
/// Panics unless `0 < p <= 1`, `n >= 1` and `δ > 1/p − 1`.
pub fn geometric_sum_upper(n: u64, p: f64, delta: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
    assert!(n >= 1, "need at least one summand");
    assert!(delta > 1.0 / p - 1.0, "delta must exceed 1/p − 1");
    (-p * p * delta * n as f64 / 6.0).exp().min(1.0)
}

/// Lemma A.3 (Chernoff with bounded dependence, [Pem01]): for 0–1 summands
/// whose dependency graph has maximum degree `d` and `μ ≥ E[X]`,
/// `Pr[X ≥ (1+δ)μ] ≤ O(d)·exp(−Ω(δ²μ/d))`.
///
/// We use the explicit constants that fall out of the equitable-colouring
/// proof: the `d+1` colour classes each contain at least `⌊n/(2(d+1))⌋`
/// summands, giving `(d+1)·exp(−δ²μ/((2+δ)(d+1)))`.
///
/// # Panics
///
/// Panics if `delta < 0`, `mu < 0`.
pub fn chernoff_bounded_dependence(mu: f64, delta: f64, d: f64) -> f64 {
    assert!(delta >= 0.0 && mu >= 0.0 && d >= 0.0);
    let classes = d + 1.0;
    (classes * (-delta * delta * mu / ((2.0 + delta) * classes)).exp()).min(1.0)
}

/// Lemma A.5 (geometric sum with bounded dependence):
/// `Pr[X ≥ μ + δn] ≤ O(d)·exp(−p²δn/(12d))`.
///
/// # Panics
///
/// Panics unless `0 < p <= 1`, `d >= 1` and `δ > 1/p − 1`.
pub fn geometric_sum_bounded_dependence(n: u64, p: f64, delta: f64, d: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0);
    assert!(d >= 1.0, "dependency degree must be ≥ 1");
    assert!(delta > 1.0 / p - 1.0, "delta must exceed 1/p − 1");
    ((d + 1.0) * (-p * p * delta * n as f64 / (12.0 * d)).exp()).min(1.0)
}

/// The "with high probability" failure budget `1/ñ^c` the paper's lemmas
/// aim for; handy for labelling experiment tables.
pub fn whp_budget(n_tilde: f64, c: f64) -> f64 {
    n_tilde.powf(-c)
}

/// The paper's `t := ⌈log₂(20/ε)⌉` (§3.1).
///
/// # Panics
///
/// Panics unless `0 < eps < 1`.
pub fn paper_t(eps: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    (20.0 / eps).log2().ceil() as usize
}

/// The paper's `R := ⌈200·t·ln ñ / ε⌉` (§3.1), with an optional constant
/// scale `c` replacing the 200 (used by the `scaled` parametrisations;
/// `c = 200` reproduces the paper).
///
/// # Panics
///
/// Panics unless `eps > 0` and `n_tilde > 1`.
pub fn paper_r(t: usize, n_tilde: f64, eps: f64, c: f64) -> usize {
    assert!(eps > 0.0, "eps must be positive");
    assert!(n_tilde > 1.0, "n_tilde must exceed 1");
    ((c * t as f64 * n_tilde.ln()) / eps).ceil() as usize
}

/// The covering-problem iteration count
/// `t := ⌈log₂ ln n + log₂(1/ε) + 8⌉` (§5.1).
///
/// # Panics
///
/// Panics unless `0 < eps < 1` and `n >= 3`.
pub fn paper_t_covering(n: f64, eps: f64) -> usize {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0, 1)");
    assert!(n >= 3.0, "n too small");
    (n.ln().log2() + (1.0 / eps).log2() + 8.0).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_upper_matches_formula() {
        let b = chernoff_upper(100.0, 0.5);
        assert!((b - (-0.25 * 100.0 / 2.5f64).exp()).abs() < 1e-12);
        assert!(chernoff_upper(0.0, 1.0) <= 1.0);
    }

    #[test]
    fn chernoff_lower_matches_formula() {
        let b = chernoff_lower(50.0, 0.2);
        assert!((b - (-0.04 * 50.0 / 2.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    fn bounds_decrease_with_mu() {
        assert!(chernoff_upper(200.0, 0.5) < chernoff_upper(100.0, 0.5));
        assert!(chernoff_lower(200.0, 0.5) < chernoff_lower(100.0, 0.5));
    }

    #[test]
    fn bounded_dependence_weakens_with_d() {
        let tight = chernoff_bounded_dependence(1000.0, 0.5, 1.0);
        let loose = chernoff_bounded_dependence(1000.0, 0.5, 50.0);
        assert!(tight < loose);
        assert!(loose <= 1.0);
    }

    #[test]
    fn geometric_sum_bound_valid_region() {
        let b = geometric_sum_upper(100, 0.5, 1.5);
        assert!(b < 1.0);
        assert!(b > 0.0);
    }

    #[test]
    #[should_panic]
    fn geometric_sum_rejects_small_delta() {
        // delta must exceed 1/p − 1 = 1.
        let _ = geometric_sum_upper(100, 0.5, 0.5);
    }

    #[test]
    fn paper_parameters() {
        // ε = 0.2: t = ⌈log₂ 100⌉ = 7.
        assert_eq!(paper_t(0.2), 7);
        // ε = 0.5: t = ⌈log₂ 40⌉ = 6.
        assert_eq!(paper_t(0.5), 6);
        let r = paper_r(7, 1000.0, 0.2, 200.0);
        assert_eq!(r, ((200.0 * 7.0 * 1000f64.ln()) / 0.2).ceil() as usize);
        assert!(paper_t_covering(1000.0, 0.2) >= paper_t(0.2) - 4);
    }

    #[test]
    fn whp_budget_shrinks_polynomially() {
        assert!((whp_budget(100.0, 2.0) - 1e-4).abs() < 1e-12);
    }

    #[test]
    fn empirical_tail_never_beats_chernoff() {
        // Sanity experiment: 2000 sums of 400 Bernoulli(0.1); compare
        // empirical tails with the certificate at a few deltas.
        use crate::dist::bernoulli;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        let (n, trials, p) = (400usize, 2000usize, 0.1f64);
        let mu = n as f64 * p;
        let sums: Vec<f64> = (0..trials)
            .map(|_| (0..n).filter(|_| bernoulli(&mut rng, p)).count() as f64)
            .collect();
        for delta in [0.3, 0.5, 0.8] {
            let thr = (1.0 + delta) * mu;
            let emp = sums.iter().filter(|&&s| s > thr).count() as f64 / trials as f64;
            let bound = chernoff_upper(mu, delta);
            assert!(
                emp <= bound + 3.0 * (bound / trials as f64).sqrt() + 0.01,
                "empirical {emp} exceeds certificate {bound} at delta {delta}"
            );
        }
    }
}
