//! # dapc-conc
//!
//! Probability substrate for the `dapc` workspace: the samplers the
//! paper's randomised algorithms draw from, the Appendix A concentration
//! bounds as numeric certificates, and empirical tail estimators for the
//! "with high probability" experiments.
//!
//! ```
//! use dapc_conc::{bounds, dist::Exponential};
//! use rand::SeedableRng;
//!
//! // The Elkin–Neiman shift of Lemma C.1 at λ = ε/10.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let shift = Exponential::new(0.02).sample(&mut rng);
//! assert!(shift >= 0.0);
//!
//! // And the Chernoff certificate the analysis leans on.
//! let tail = bounds::chernoff_upper(16.0 * 1000f64.ln(), 1.0);
//! assert!(tail < 1e-10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod dist;
pub mod empirical;

pub use dist::{Exponential, Geometric};
pub use empirical::{FailureCounter, TailEstimator};
