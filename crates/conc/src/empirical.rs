//! Empirical tail estimation for "with high probability" experiments.
//!
//! The headline difference between the paper's decomposition (Theorem 1.1)
//! and the classical ones (Lemma C.1, [MPX13]) is not the expectation but
//! the *tail*: on the Appendix C families the classical algorithms exceed
//! the `ε|V|` deletion budget with probability `Ω(ε)`. The experiments
//! estimate such failure probabilities over many seeded trials; this module
//! holds the estimator and its confidence interval.

/// Accumulates scalar samples and answers tail/quantile queries.
///
/// ```
/// use dapc_conc::empirical::TailEstimator;
/// let mut t = TailEstimator::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     t.push(x);
/// }
/// assert_eq!(t.len(), 4);
/// assert_eq!(t.mean(), 2.5);
/// assert_eq!(t.tail_frequency(2.5), 0.5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TailEstimator {
    samples: Vec<f64>,
    sorted: bool,
}

impl TailEstimator {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.samples.push(x);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean (0 for the empty estimator).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Maximum sample (−∞ for the empty estimator).
    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
            self.sorted = true;
        }
    }

    /// Empirical `q`-quantile (nearest-rank), `0 <= q <= 1`.
    ///
    /// # Panics
    ///
    /// Panics on the empty estimator or `q` outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!(!self.samples.is_empty(), "quantile of empty estimator");
        assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
        self.ensure_sorted();
        let idx = ((q * self.samples.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        self.samples[idx]
    }

    /// Empirical `Pr[X >= threshold]`.
    pub fn tail_frequency(&self, threshold: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|&&x| x >= threshold).count() as f64 / self.samples.len() as f64
    }

    /// Wilson 95% confidence interval for `Pr[X >= threshold]`.
    pub fn tail_confidence(&self, threshold: f64) -> (f64, f64) {
        wilson_interval(
            self.samples.iter().filter(|&&x| x >= threshold).count(),
            self.samples.len(),
        )
    }
}

/// Wilson score interval (95%) for a binomial proportion with `k` successes
/// out of `n` trials. Returns `(0, 1)` when `n == 0`.
pub fn wilson_interval(k: usize, n: usize) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let z = 1.959_963_985f64; // 97.5th normal percentile
    let n_ = n as f64;
    let p = k as f64 / n_;
    let z2 = z * z;
    let denom = 1.0 + z2 / n_;
    let centre = p + z2 / (2.0 * n_);
    let margin = z * (p * (1.0 - p) / n_ + z2 / (4.0 * n_ * n_)).sqrt();
    (
        ((centre - margin) / denom).max(0.0),
        ((centre + margin) / denom).min(1.0),
    )
}

/// Counts failures of a repeated boolean experiment and reports the
/// empirical probability with its confidence interval.
#[derive(Clone, Debug, Default)]
pub struct FailureCounter {
    trials: usize,
    failures: usize,
}

impl FailureCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one trial outcome (`true` = failure).
    pub fn record(&mut self, failed: bool) {
        self.trials += 1;
        if failed {
            self.failures += 1;
        }
    }

    /// Number of recorded trials.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Number of recorded failures.
    pub fn failures(&self) -> usize {
        self.failures
    }

    /// Empirical failure probability (0 if no trials).
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.failures as f64 / self.trials as f64
        }
    }

    /// Wilson 95% interval for the failure probability.
    pub fn confidence(&self) -> (f64, f64) {
        wilson_interval(self.failures, self.trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_known_data() {
        let mut t = TailEstimator::new();
        for x in 1..=100 {
            t.push(x as f64);
        }
        assert_eq!(t.quantile(0.5), 50.0);
        assert_eq!(t.quantile(0.95), 95.0);
        assert_eq!(t.quantile(1.0), 100.0);
        assert_eq!(t.quantile(0.0), 1.0);
        assert_eq!(t.max(), 100.0);
    }

    #[test]
    fn tail_frequency_counts_inclusive() {
        let mut t = TailEstimator::new();
        for x in [1.0, 2.0, 2.0, 3.0] {
            t.push(x);
        }
        assert_eq!(t.tail_frequency(2.0), 0.75);
        assert_eq!(t.tail_frequency(3.5), 0.0);
    }

    #[test]
    fn wilson_interval_brackets_estimate() {
        let (lo, hi) = wilson_interval(10, 100);
        assert!(lo < 0.1 && 0.1 < hi);
        assert!(lo > 0.04 && hi < 0.2);
        let (lo0, hi0) = wilson_interval(0, 100);
        assert_eq!(lo0, 0.0);
        assert!(hi0 < 0.05);
    }

    #[test]
    fn failure_counter_rates() {
        let mut c = FailureCounter::new();
        for i in 0..10 {
            c.record(i % 5 == 0);
        }
        assert_eq!(c.trials(), 10);
        assert_eq!(c.failures(), 2);
        assert!((c.rate() - 0.2).abs() < 1e-12);
        let (lo, hi) = c.confidence();
        assert!(lo < 0.2 && 0.2 < hi);
    }

    #[test]
    fn empty_estimator_is_safe() {
        let t = TailEstimator::new();
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.tail_frequency(1.0), 0.0);
    }
}
