//! Samplers for the distributions used by the paper's algorithms.
//!
//! The Elkin–Neiman decomposition (Lemma C.1) draws exponential shifts
//! `T_v ~ Exponential(λ)` capped at `4·ln ñ/λ`; the sparse-cover analysis
//! (Lemma C.2) compares cluster multiplicities against geometric random
//! variables. Both are provided here with exact inverse-CDF sampling so the
//! algorithms stay reproducible under seeded RNGs.

use rand::Rng;

/// An exponential distribution with rate `λ > 0`.
///
/// ```
/// use dapc_conc::dist::Exponential;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let exp = Exponential::new(0.5);
/// let x = exp.sample(&mut rng);
/// assert!(x >= 0.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        Exponential { rate }
    }

    /// The rate `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean `1/λ`.
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws one sample via inversion: `−ln(U)/λ`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        -u.ln() / self.rate
    }

    /// Draws one sample, **resetting to zero** any value `≥ cap` — exactly
    /// the clipping rule of Lemma C.1 ("should such event happen, the
    /// vertex simply resets `T_v = 0` and proceeds as usual").
    pub fn sample_reset_at<R: Rng>(&self, rng: &mut R, cap: f64) -> f64 {
        let x = self.sample(rng);
        if x >= cap {
            0.0
        } else {
            x
        }
    }

    /// `Pr[X ≥ x]` (survival function).
    pub fn survival(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }
}

/// A geometric distribution on `{1, 2, 3, …}` with success probability `p`:
/// `Pr[X = k] = (1−p)^{k−1} p`, `E[X] = 1/p` — the convention of
/// Appendix A of the paper.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// Creates the distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        Geometric { p }
    }

    /// The success probability `p`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `1/p`.
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws one sample by inversion: `⌈ln U / ln(1−p)⌉`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        let k = (u.ln() / (1.0 - self.p).ln()).ceil();
        (k as u64).max(1)
    }

    /// `Pr[X ≥ k] = (1−p)^{k−1}` for `k ≥ 1`.
    pub fn survival(&self, k: u64) -> f64 {
        if k <= 1 {
            1.0
        } else {
            (1.0 - self.p).powi((k - 1) as i32)
        }
    }
}

/// Samples a Bernoulli event of probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng>(rng: &mut R, p: f64) -> bool {
    if p <= 0.0 {
        false
    } else if p >= 1.0 {
        true
    } else {
        rng.random::<f64>() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xDAC)
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = rng();
        let d = Exponential::new(0.5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exponential_reset_caps() {
        let mut r = rng();
        let d = Exponential::new(0.1);
        for _ in 0..5_000 {
            let x = d.sample_reset_at(&mut r, 5.0);
            assert!(x < 5.0);
        }
    }

    #[test]
    fn exponential_survival_matches_empirical() {
        let mut r = rng();
        let d = Exponential::new(1.0);
        let n = 40_000;
        let count = (0..n).filter(|_| d.sample(&mut r) >= 1.0).count();
        let emp = count as f64 / n as f64;
        assert!((emp - d.survival(1.0)).abs() < 0.01, "emp {emp}");
    }

    #[test]
    fn geometric_mean_and_support() {
        let mut r = rng();
        let d = Geometric::new(0.25);
        let n = 20_000;
        let samples: Vec<u64> = (0..n).map(|_| d.sample(&mut r)).collect();
        assert!(samples.iter().all(|&x| x >= 1));
        let mean = samples.iter().sum::<u64>() as f64 / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn geometric_p1_is_constant() {
        let mut r = rng();
        let d = Geometric::new(1.0);
        assert_eq!(d.sample(&mut r), 1);
        assert_eq!(d.survival(2), 0.0);
    }

    #[test]
    fn geometric_survival() {
        let d = Geometric::new(0.5);
        assert!((d.survival(3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!(!bernoulli(&mut r, 0.0));
        assert!(bernoulli(&mut r, 1.0));
        assert!(!bernoulli(&mut r, -3.0));
        assert!(bernoulli(&mut r, 7.0));
    }

    #[test]
    #[should_panic]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    #[should_panic]
    fn geometric_rejects_zero_p() {
        let _ = Geometric::new(0.0);
    }
}
