//! Process-wide observability for the dapc stack.
//!
//! One global, lazily-initialised **metrics registry** (atomic counters,
//! gauges, and log₂-bucketed histograms with p50/p90/p99 summaries) plus
//! a lightweight **span tracer** whose scoped enter/exit timers build a
//! per-solve phase tree out of dotted metric names. Three guarantees
//! shape everything here:
//!
//! - **Near-zero cost when disabled.** Every instrumentation site gates
//!   on [`enabled`], a single relaxed atomic load. No timestamps are
//!   taken, no locks touched, no allocations made on the disabled path.
//! - **Results are never perturbed.** Nothing in this crate touches an
//!   RNG stream or a report byte; metrics observe solves, they never
//!   participate in them. The runtime's byte-identity guard test diffs
//!   a full sweep with metrics on vs off to enforce this.
//! - **Snapshots are hardened like every other loader in the stack.**
//!   [`MetricsSnapshot::load_from`] accepts exactly the canonical bytes
//!   [`MetricsSnapshot::save_to`] emits: truncation at any byte, trailing
//!   data, unsorted or duplicate names, and malformed lines are all
//!   errors.
//!
//! Metric names follow `layer.subsystem.name` (for example
//! `exec.task.wait_micros`); span histograms are named
//! `span.<outer>.<inner>` from the thread's live span stack. Names are
//! restricted to `[a-z0-9._-]` so the JSON-lines writer never needs an
//! escape path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The enable gate
// ---------------------------------------------------------------------------

const GATE_UNINIT: u8 = 0;
const GATE_OFF: u8 = 1;
const GATE_ON: u8 = 2;

static GATE: AtomicU8 = AtomicU8::new(GATE_UNINIT);

/// Whether instrumentation is live. One relaxed atomic load on the hot
/// path; the first call resolves the `DAPC_OBS` environment variable
/// (`1`, `true`, or `on` enable it) unless [`set_enabled`] ran first.
///
/// Every hook in the stack checks this before taking a timestamp or a
/// lock, so a disabled build pays exactly this load per event.
#[inline]
pub fn enabled() -> bool {
    match GATE.load(Ordering::Relaxed) {
        GATE_ON => true,
        GATE_OFF => false,
        _ => init_gate(),
    }
}

#[cold]
fn init_gate() -> bool {
    let on = std::env::var("DAPC_OBS")
        .map(|v| matches!(v.as_str(), "1" | "true" | "on"))
        .unwrap_or(false);
    // A racing `set_enabled` wins: only replace the uninitialised state.
    let _ = GATE.compare_exchange(
        GATE_UNINIT,
        if on { GATE_ON } else { GATE_OFF },
        Ordering::Relaxed,
        Ordering::Relaxed,
    );
    GATE.load(Ordering::Relaxed) == GATE_ON
}

/// Programmatically enables or disables instrumentation, overriding the
/// environment. Callers that enable metrics mid-process (for example
/// `tables --metrics`) should do so before solving starts; toggling
/// mid-solve is safe but yields partial measurements.
pub fn set_enabled(on: bool) {
    GATE.store(if on { GATE_ON } else { GATE_OFF }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

/// Adds with saturation instead of wrapping: a counter that has been
/// incremented past `u64::MAX` pins there rather than lying small.
fn sat_add(cell: &AtomicU64, n: u64) {
    if n == 0 {
        return;
    }
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
        Some(v.saturating_add(n))
    });
}

/// A monotone event counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        sat_add(&self.0, n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous level (bytes resident, families live, ...).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Raises the level by `n`, saturating at `u64::MAX`.
    #[inline]
    pub fn add(&self, n: u64) {
        sat_add(&self.0, n);
    }

    /// Lowers the level by `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Sets the level outright.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket 0 holds exact zeros, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b - 1]`, up to bucket 64 for the top of
/// the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A log₂-bucketed distribution of `u64` observations (latencies in
/// microseconds, sizes in bytes, occupancies in slots).
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// The bucket a value lands in: 0 for 0, else `64 - leading_zeros`.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket, used as the quantile estimate.
fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

impl Histogram {
    /// Records one observation. Count, sum, and the bucket tally all
    /// saturate at `u64::MAX` instead of wrapping.
    #[inline]
    pub fn observe(&self, v: u64) {
        sat_add(&self.0.count, 1);
        sat_add(&self.0.sum, v);
        let b = &self.0.buckets[bucket_index(v)];
        let _ = b.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
            Some(c.saturating_add(1))
        });
    }

    /// Records a [`Duration`] in whole microseconds (saturating).
    #[inline]
    pub fn observe_micros(&self, d: Duration) {
        self.observe(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn freeze(&self, name: &str) -> SnapshotEntry {
        let mut buckets = Vec::new();
        for (i, b) in self.0.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i as u8, c));
            }
        }
        let count = self.0.count.load(Ordering::Relaxed);
        SnapshotEntry::Histogram {
            name: name.to_string(),
            count,
            sum: self.0.sum.load(Ordering::Relaxed),
            p50: quantile(&buckets, count, 50),
            p90: quantile(&buckets, count, 90),
            p99: quantile(&buckets, count, 99),
            buckets,
        }
    }
}

/// Upper-bound estimate of the `pct`-th percentile from sparse bucket
/// tallies: the inclusive top of the bucket containing the rank
/// `ceil(count * pct / 100)` observation (0 when empty).
fn quantile(buckets: &[(u8, u64)], count: u64, pct: u64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((u128::from(count) * u128::from(pct)).div_ceil(100)).max(1);
    let mut seen: u128 = 0;
    for &(b, c) in buckets {
        seen += u128::from(c);
        if seen >= rank {
            return bucket_upper(b as usize);
        }
    }
    bucket_upper(buckets.last().map_or(0, |&(b, _)| b as usize))
}

// ---------------------------------------------------------------------------
// The registry
// ---------------------------------------------------------------------------

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Registry {
    map: Mutex<BTreeMap<String, Metric>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        map: Mutex::new(BTreeMap::new()),
    })
}

fn check_name(name: &str) {
    assert!(
        !name.is_empty()
            && name.bytes().all(|b| b.is_ascii_lowercase()
                || b.is_ascii_digit()
                || matches!(b, b'.' | b'_' | b'-')),
        "metric name {name:?} must be non-empty [a-z0-9._-]"
    );
}

/// Registers (or fetches) the counter `name`. Call once per site and
/// cache the handle — lookups take the registry lock.
///
/// # Panics
///
/// Panics when `name` is malformed or already registered as a different
/// metric kind: both are programmer errors, not runtime conditions.
pub fn counter(name: &str) -> Counter {
    check_name(name);
    let mut map = registry().map.lock().expect("metric registry poisoned");
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        _ => panic!("metric {name:?} is already registered as a different kind"),
    }
}

/// Registers (or fetches) the gauge `name`. Same contract as
/// [`counter`].
///
/// # Panics
///
/// Panics on a malformed name or a kind mismatch.
pub fn gauge(name: &str) -> Gauge {
    check_name(name);
    let mut map = registry().map.lock().expect("metric registry poisoned");
    match map
        .entry(name.to_string())
        .or_insert_with(|| Metric::Gauge(Gauge(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Gauge(g) => g.clone(),
        _ => panic!("metric {name:?} is already registered as a different kind"),
    }
}

/// Registers (or fetches) the histogram `name`. Same contract as
/// [`counter`].
///
/// # Panics
///
/// Panics on a malformed name or a kind mismatch.
pub fn histogram(name: &str) -> Histogram {
    check_name(name);
    let mut map = registry().map.lock().expect("metric registry poisoned");
    match map.entry(name.to_string()).or_insert_with(|| {
        Metric::Histogram(Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        })))
    }) {
        Metric::Histogram(h) => h.clone(),
        _ => panic!("metric {name:?} is already registered as a different kind"),
    }
}

// ---------------------------------------------------------------------------
// Span tracing
// ---------------------------------------------------------------------------

/// FNV-1a, used for the span-path handle memo below: span drops hash a
/// short dotted path on every record, where FNV beats the default
/// DoS-resistant SipHash and the keys are program-chosen (not attacker
/// data), so collision hardening buys nothing.
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

type SpanMemo = std::collections::HashMap<String, Histogram, std::hash::BuildHasherDefault<Fnv1a>>;

/// Everything a span touches on its thread, in one thread-local so a
/// record costs a single TLS access. Span drops are the highest-frequency
/// instrumentation site (one per subset solve), so the steady state must
/// not take the registry mutex or allocate: the dotted path is rebuilt
/// into the reused `buf` and resolved through `handles`; only the first
/// sighting of a path on a thread goes to the global registry.
#[derive(Default)]
struct SpanTls {
    stack: Vec<&'static str>,
    buf: String,
    handles: SpanMemo,
}

thread_local! {
    static SPAN_TLS: RefCell<SpanTls> = RefCell::new(SpanTls::default());
}

/// A scoped phase timer; see [`span`].
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
pub struct Span {
    start: Option<Instant>,
}

/// Opens a named span on this thread's span stack. When instrumentation
/// is enabled, dropping the guard records the elapsed microseconds into
/// a histogram named `span.` followed by the dot-joined stack — nested
/// spans therefore build a phase tree out of names alone (for example
/// `span.solve.decompose`). When disabled this is a no-op: no clock
/// read, no thread-local touch.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { start: None };
    }
    SPAN_TLS.with(|s| s.borrow_mut().stack.push(name));
    Span {
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        SPAN_TLS.with(|s| {
            let mut tls = s.borrow_mut();
            let SpanTls {
                stack,
                buf,
                handles,
            } = &mut *tls;
            buf.clear();
            buf.push_str("span");
            for seg in stack.iter() {
                buf.push('.');
                buf.push_str(seg);
            }
            match handles.get(buf.as_str()) {
                Some(hist) => hist.observe_micros(elapsed),
                None => {
                    let hist = histogram(buf);
                    hist.observe_micros(elapsed);
                    handles.insert(buf.clone(), hist);
                }
            }
            stack.pop();
        });
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Snapshot format version written in the header line.
pub const SNAPSHOT_VERSION: u64 = 1;

/// One frozen metric inside a [`MetricsSnapshot`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotEntry {
    /// A frozen [`Counter`].
    Counter {
        /// Metric name.
        name: String,
        /// Counter value at capture.
        value: u64,
    },
    /// A frozen [`Gauge`].
    Gauge {
        /// Metric name.
        name: String,
        /// Gauge level at capture.
        value: u64,
    },
    /// A frozen [`Histogram`] with its quantile summary.
    Histogram {
        /// Metric name.
        name: String,
        /// Observations recorded.
        count: u64,
        /// Saturating sum of observations.
        sum: u64,
        /// Upper-bound estimate of the median.
        p50: u64,
        /// Upper-bound estimate of the 90th percentile.
        p90: u64,
        /// Upper-bound estimate of the 99th percentile.
        p99: u64,
        /// Sparse `(bucket, count)` tallies, ascending, zeros omitted.
        buckets: Vec<(u8, u64)>,
    },
}

impl SnapshotEntry {
    /// The metric's registry name.
    pub fn name(&self) -> &str {
        match self {
            SnapshotEntry::Counter { name, .. }
            | SnapshotEntry::Gauge { name, .. }
            | SnapshotEntry::Histogram { name, .. } => name,
        }
    }
}

/// A point-in-time copy of every registered metric, sorted by name.
///
/// The wire form is versioned JSON lines: a header declaring the metric
/// count, then exactly that many metric lines. The count makes
/// truncation at a line boundary detectable; truncation inside a line
/// fails the line parser; trailing data after the last line is an
/// error. [`load_from`](MetricsSnapshot::load_from) accepts only the
/// canonical bytes [`save_to`](MetricsSnapshot::save_to) emits.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Frozen metrics, strictly ascending by name.
    pub entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    /// Freezes the current registry contents. Capture is not atomic
    /// across metrics — concurrent observations may land between reads —
    /// but each individual value is a coherent atomic load.
    pub fn capture() -> Self {
        let map = registry().map.lock().expect("metric registry poisoned");
        let entries = map
            .iter()
            .map(|(name, metric)| match metric {
                Metric::Counter(c) => SnapshotEntry::Counter {
                    name: name.clone(),
                    value: c.get(),
                },
                Metric::Gauge(g) => SnapshotEntry::Gauge {
                    name: name.clone(),
                    value: g.get(),
                },
                Metric::Histogram(h) => h.freeze(name),
            })
            .collect();
        MetricsSnapshot { entries }
    }

    /// Writes the canonical JSON-lines form.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        writeln!(
            w,
            "{{\"format\":\"dapc-obs\",\"version\":{SNAPSHOT_VERSION},\"metrics\":{}}}",
            self.entries.len()
        )?;
        for e in &self.entries {
            match e {
                SnapshotEntry::Counter { name, value } => {
                    writeln!(
                        w,
                        "{{\"kind\":\"counter\",\"name\":\"{name}\",\"value\":{value}}}"
                    )?;
                }
                SnapshotEntry::Gauge { name, value } => {
                    writeln!(
                        w,
                        "{{\"kind\":\"gauge\",\"name\":\"{name}\",\"value\":{value}}}"
                    )?;
                }
                SnapshotEntry::Histogram {
                    name,
                    count,
                    sum,
                    p50,
                    p90,
                    p99,
                    buckets,
                } => {
                    write!(
                        w,
                        "{{\"kind\":\"histogram\",\"name\":\"{name}\",\"count\":{count},\"sum\":{sum},\"p50\":{p50},\"p90\":{p90},\"p99\":{p99},\"buckets\":["
                    )?;
                    for (i, (b, c)) in buckets.iter().enumerate() {
                        if i > 0 {
                            write!(w, ",")?;
                        }
                        write!(w, "[{b},{c}]")?;
                    }
                    writeln!(w, "]}}")?;
                }
            }
        }
        w.flush()
    }

    /// The canonical bytes as a vector (convenience over
    /// [`save_to`](MetricsSnapshot::save_to)).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::new();
        self.save_to(&mut w).expect("writing to a Vec cannot fail");
        w
    }

    /// Reads back a snapshot, accepting exactly the canonical form.
    /// All-or-nothing: truncation at any byte, trailing data, a metric
    /// count that disagrees with the header, out-of-order or duplicate
    /// names, and any non-canonical byte are all errors.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on malformed input and
    /// propagates reader errors.
    pub fn load_from<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut text = String::new();
        r.read_to_string(&mut text)
            .map_err(|e| invalid(format!("snapshot is not UTF-8 text: {e}")))?;
        let mut cursor = text.as_str();
        let header = take_line(&mut cursor)?;
        let mut h = header;
        expect(&mut h, "{\"format\":\"dapc-obs\",\"version\":")?;
        let version = parse_u64(&mut h)?;
        if version != SNAPSHOT_VERSION {
            return Err(invalid(format!(
                "unsupported snapshot version {version} (expected {SNAPSHOT_VERSION})"
            )));
        }
        expect(&mut h, ",\"metrics\":")?;
        let n = parse_u64(&mut h)?;
        expect(&mut h, "}")?;
        end_of_line(h)?;

        let mut entries = Vec::new();
        for i in 0..n {
            let line = take_line(&mut cursor)
                .map_err(|_| invalid(format!("snapshot truncated: {i} of {n} metric lines")))?;
            let entry = parse_entry(line)?;
            if let Some(prev) = entries.last() {
                let prev: &SnapshotEntry = prev;
                if prev.name() >= entry.name() {
                    return Err(invalid(format!(
                        "metric names must be strictly ascending: {:?} then {:?}",
                        prev.name(),
                        entry.name()
                    )));
                }
            }
            entries.push(entry);
        }
        if !cursor.is_empty() {
            return Err(invalid("trailing data after the last metric line"));
        }
        Ok(MetricsSnapshot { entries })
    }

    /// Parses the canonical bytes (convenience over
    /// [`load_from`](MetricsSnapshot::load_from)).
    ///
    /// # Errors
    ///
    /// Same contract as [`load_from`](MetricsSnapshot::load_from).
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        Self::load_from(&mut &bytes[..])
    }

    /// Renders an aligned, human-readable table in the snapshot's
    /// (sorted) order — the `dapc-serve stats` display format.
    pub fn render(&self) -> String {
        let width = self
            .entries
            .iter()
            .map(|e| e.name().len())
            .max()
            .unwrap_or(0);
        let mut out = format!(
            "dapc-obs snapshot v{SNAPSHOT_VERSION} ({} metric{})\n",
            self.entries.len(),
            if self.entries.len() == 1 { "" } else { "s" }
        );
        for e in &self.entries {
            match e {
                SnapshotEntry::Counter { name, value } => {
                    out.push_str(&format!("counter    {name:<width$}  {value}\n"));
                }
                SnapshotEntry::Gauge { name, value } => {
                    out.push_str(&format!("gauge      {name:<width$}  {value}\n"));
                }
                SnapshotEntry::Histogram {
                    name,
                    count,
                    sum,
                    p50,
                    p90,
                    p99,
                    ..
                } => {
                    out.push_str(&format!(
                        "histogram  {name:<width$}  count={count} sum={sum} p50={p50} p90={p90} p99={p99}\n"
                    ));
                }
            }
        }
        out
    }

    /// Looks up an entry by name.
    pub fn get(&self, name: &str) -> Option<&SnapshotEntry> {
        self.entries.iter().find(|e| e.name() == name)
    }
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Takes one `\n`-terminated line off the cursor. A remainder without a
/// newline is a truncated line, not a line.
fn take_line<'a>(cursor: &mut &'a str) -> io::Result<&'a str> {
    match cursor.find('\n') {
        Some(i) => {
            let line = &cursor[..i];
            *cursor = &cursor[i + 1..];
            Ok(line)
        }
        None => Err(invalid(if cursor.is_empty() {
            "snapshot ended before the expected line".to_string()
        } else {
            format!(
                "unterminated snapshot line {:?}",
                &cursor[..cursor.len().min(40)]
            )
        })),
    }
}

fn expect(s: &mut &str, lit: &str) -> io::Result<()> {
    match s.strip_prefix(lit) {
        Some(rest) => {
            *s = rest;
            Ok(())
        }
        None => Err(invalid(format!(
            "malformed snapshot line: expected {lit:?} at {:?}",
            &s[..s.len().min(40)]
        ))),
    }
}

fn parse_u64(s: &mut &str) -> io::Result<u64> {
    let digits = s.len() - s.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return Err(invalid(format!(
            "malformed snapshot number at {:?}",
            &s[..s.len().min(40)]
        )));
    }
    // Reject non-canonical leading zeros so only `save_to` output parses.
    if digits > 1 && s.starts_with('0') {
        return Err(invalid("non-canonical number with leading zeros"));
    }
    let v = s[..digits]
        .parse::<u64>()
        .map_err(|e| invalid(format!("snapshot number out of range: {e}")))?;
    *s = &s[digits..];
    Ok(v)
}

fn end_of_line(s: &str) -> io::Result<()> {
    if s.is_empty() {
        Ok(())
    } else {
        Err(invalid(format!("trailing bytes on snapshot line: {s:?}")))
    }
}

fn parse_name(s: &mut &str) -> io::Result<String> {
    expect(s, "\"")?;
    let len = s.len()
        - s.trim_start_matches(|c: char| {
            c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '.' | '_' | '-')
        })
        .len();
    if len == 0 {
        return Err(invalid("empty or malformed metric name"));
    }
    let name = s[..len].to_string();
    *s = &s[len..];
    expect(s, "\"")?;
    Ok(name)
}

fn parse_entry(line: &str) -> io::Result<SnapshotEntry> {
    let mut s = line;
    expect(&mut s, "{\"kind\":\"")?;
    if let Some(rest) = s.strip_prefix("counter\",\"name\":") {
        s = rest;
        let name = parse_name(&mut s)?;
        expect(&mut s, ",\"value\":")?;
        let value = parse_u64(&mut s)?;
        expect(&mut s, "}")?;
        end_of_line(s)?;
        Ok(SnapshotEntry::Counter { name, value })
    } else if let Some(rest) = s.strip_prefix("gauge\",\"name\":") {
        s = rest;
        let name = parse_name(&mut s)?;
        expect(&mut s, ",\"value\":")?;
        let value = parse_u64(&mut s)?;
        expect(&mut s, "}")?;
        end_of_line(s)?;
        Ok(SnapshotEntry::Gauge { name, value })
    } else if let Some(rest) = s.strip_prefix("histogram\",\"name\":") {
        s = rest;
        let name = parse_name(&mut s)?;
        expect(&mut s, ",\"count\":")?;
        let count = parse_u64(&mut s)?;
        expect(&mut s, ",\"sum\":")?;
        let sum = parse_u64(&mut s)?;
        expect(&mut s, ",\"p50\":")?;
        let p50 = parse_u64(&mut s)?;
        expect(&mut s, ",\"p90\":")?;
        let p90 = parse_u64(&mut s)?;
        expect(&mut s, ",\"p99\":")?;
        let p99 = parse_u64(&mut s)?;
        expect(&mut s, ",\"buckets\":[")?;
        let mut buckets = Vec::new();
        if !s.starts_with(']') {
            loop {
                expect(&mut s, "[")?;
                let b = parse_u64(&mut s)?;
                let b = u8::try_from(b)
                    .ok()
                    .filter(|&b| (b as usize) < HISTOGRAM_BUCKETS)
                    .ok_or_else(|| invalid(format!("bucket index {b} out of range")))?;
                expect(&mut s, ",")?;
                let c = parse_u64(&mut s)?;
                if c == 0 {
                    return Err(invalid("zero bucket counts are omitted, not written"));
                }
                if let Some(&(prev, _)) = buckets.last() {
                    if prev >= b {
                        return Err(invalid("bucket indices must be strictly ascending"));
                    }
                }
                buckets.push((b, c));
                expect(&mut s, "]")?;
                if s.starts_with(',') {
                    s = &s[1..];
                } else {
                    break;
                }
            }
        }
        expect(&mut s, "]}")?;
        end_of_line(s)?;
        Ok(SnapshotEntry::Histogram {
            name,
            count,
            sum,
            p50,
            p90,
            p99,
            buckets,
        })
    } else {
        Err(invalid(format!(
            "unknown metric kind on snapshot line {:?}",
            &line[..line.len().min(40)]
        )))
    }
}

/// Captures the registry and writes it to `path` atomically (a `.tmp`
/// sibling renamed into place), so a reader never sees a half-written
/// snapshot.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_snapshot(path: &Path) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp)?;
    MetricsSnapshot::capture().save_to(&mut f)?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Periodic flushing
// ---------------------------------------------------------------------------

/// A background thread that rewrites a snapshot file on an interval.
/// Dropping the handle stops the thread and writes one final snapshot,
/// so the file always reflects end-of-process state.
pub struct PeriodicFlush {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    path: PathBuf,
}

impl PeriodicFlush {
    /// Starts flushing [`write_snapshot`] to `path` every `interval`.
    /// Write failures are swallowed — observability must never take the
    /// process down.
    pub fn start(path: impl Into<PathBuf>, interval: Duration) -> Self {
        let path = path.into();
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let path = path.clone();
            let stop = Arc::clone(&stop);
            // dapc-allow(thread-spawn): the periodic-flush service thread is obs infrastructure
            std::thread::spawn(move || {
                let tick = Duration::from_millis(50).min(interval);
                let mut since_flush = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    since_flush += tick;
                    if since_flush >= interval {
                        since_flush = Duration::ZERO;
                        let _ = write_snapshot(&path);
                    }
                }
            })
        };
        PeriodicFlush {
            stop,
            handle: Some(handle),
            path,
        }
    }
}

impl Drop for PeriodicFlush {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let _ = write_snapshot(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every test works through uniquely-named metrics because the
    /// registry is process-global and the harness runs tests in
    /// parallel.
    fn hist(name: &str) -> Histogram {
        set_enabled(true);
        histogram(name)
    }

    #[test]
    fn counters_and_gauges_register_and_accumulate() {
        set_enabled(true);
        let c = counter("test.lib.counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(counter("test.lib.counter").get(), 5, "same handle by name");

        let g = gauge("test.lib.gauge");
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.sub(100);
        assert_eq!(g.get(), 0, "gauges saturate at zero");
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn bucket_index_maps_powers_of_two_to_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 1..64usize {
            // Each bucket's bounds land in that bucket.
            assert_eq!(bucket_index(1u64 << (b - 1)), b, "lower bound of {b}");
            assert_eq!(bucket_index(bucket_upper(b)), b, "upper bound of {b}");
        }
    }

    #[test]
    fn histogram_with_zero_observations_summarises_to_zeros() {
        let h = hist("test.lib.hist_empty");
        let SnapshotEntry::Histogram {
            count,
            sum,
            p50,
            p90,
            p99,
            buckets,
            ..
        } = h.freeze("test.lib.hist_empty")
        else {
            panic!("freeze returns a histogram entry")
        };
        assert_eq!((count, sum, p50, p90, p99), (0, 0, 0, 0, 0));
        assert!(buckets.is_empty());
    }

    #[test]
    fn histogram_with_a_single_observation_reports_it_in_every_quantile() {
        let h = hist("test.lib.hist_single");
        h.observe(100);
        let SnapshotEntry::Histogram {
            count,
            sum,
            p50,
            p90,
            p99,
            buckets,
            ..
        } = h.freeze("test.lib.hist_single")
        else {
            panic!("freeze returns a histogram entry")
        };
        assert_eq!((count, sum), (1, 100));
        // 100 lands in bucket 7 ([64, 127]); the quantile estimate is the
        // bucket's inclusive upper bound.
        assert_eq!(buckets, vec![(7, 1)]);
        assert_eq!((p50, p90, p99), (127, 127, 127));
    }

    #[test]
    fn histogram_saturates_instead_of_wrapping() {
        let h = hist("test.lib.hist_saturate");
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        let SnapshotEntry::Histogram { count, sum, .. } = h.freeze("test.lib.hist_saturate") else {
            panic!("freeze returns a histogram entry")
        };
        assert_eq!(count, 2);
        assert_eq!(sum, u64::MAX, "sum pins at the ceiling, never wraps");
    }

    #[test]
    fn zero_observations_land_in_the_zero_bucket() {
        let h = hist("test.lib.hist_zero_value");
        h.observe(0);
        h.observe(0);
        let SnapshotEntry::Histogram {
            count,
            sum,
            p50,
            buckets,
            ..
        } = h.freeze("test.lib.hist_zero_value")
        else {
            panic!("freeze returns a histogram entry")
        };
        assert_eq!((count, sum, p50), (2, 0, 0));
        assert_eq!(buckets, vec![(0, 2)]);
    }

    #[test]
    fn quantiles_walk_the_bucket_cdf() {
        let h = hist("test.lib.hist_quantiles");
        // 90 observations of 1 (bucket 1), 10 of 1000 (bucket 10).
        for _ in 0..90 {
            h.observe(1);
        }
        for _ in 0..10 {
            h.observe(1000);
        }
        let SnapshotEntry::Histogram { p50, p90, p99, .. } = h.freeze("test.lib.hist_quantiles")
        else {
            panic!("freeze returns a histogram entry")
        };
        assert_eq!(p50, 1, "rank 50 of 100 sits in bucket 1");
        assert_eq!(p90, 1, "rank 90 of 100 is the last bucket-1 observation");
        assert_eq!(p99, 1023, "rank 99 reaches bucket 10's upper bound");
    }

    #[test]
    fn snapshot_round_trips_through_canonical_bytes() {
        let snap = MetricsSnapshot {
            entries: vec![
                SnapshotEntry::Counter {
                    name: "a.counter".into(),
                    value: 7,
                },
                SnapshotEntry::Gauge {
                    name: "b.gauge".into(),
                    value: 0,
                },
                SnapshotEntry::Histogram {
                    name: "c.hist".into(),
                    count: 3,
                    sum: 1102,
                    p50: 127,
                    p90: 1023,
                    p99: 1023,
                    buckets: vec![(1, 1), (7, 1), (10, 1)],
                },
            ],
        };
        let bytes = snap.to_bytes();
        assert_eq!(
            MetricsSnapshot::from_bytes(&bytes).expect("round trip"),
            snap
        );

        let empty = MetricsSnapshot::default();
        let bytes = empty.to_bytes();
        assert_eq!(
            MetricsSnapshot::from_bytes(&bytes).expect("empty round trip"),
            empty
        );
    }

    #[test]
    fn snapshot_truncation_at_every_byte_is_an_error() {
        let snap = MetricsSnapshot {
            entries: vec![
                SnapshotEntry::Counter {
                    name: "a.counter".into(),
                    value: 7,
                },
                SnapshotEntry::Histogram {
                    name: "c.hist".into(),
                    count: 2,
                    sum: 100,
                    p50: 63,
                    p90: 63,
                    p99: 63,
                    buckets: vec![(6, 2)],
                },
            ],
        };
        let bytes = snap.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                MetricsSnapshot::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut}/{} bytes must not parse",
                bytes.len()
            );
        }
        assert!(MetricsSnapshot::from_bytes(&bytes).is_ok());
    }

    #[test]
    fn snapshot_trailing_and_non_canonical_bytes_are_errors() {
        let snap = MetricsSnapshot {
            entries: vec![SnapshotEntry::Counter {
                name: "a.counter".into(),
                value: 7,
            }],
        };
        let mut padded = snap.to_bytes();
        padded.extend_from_slice(b"x");
        assert!(
            MetricsSnapshot::from_bytes(&padded).is_err(),
            "trailing junk"
        );

        let mut extra_line = snap.to_bytes();
        extra_line.extend_from_slice(b"{\"kind\":\"counter\",\"name\":\"zz\",\"value\":1}\n");
        assert!(
            MetricsSnapshot::from_bytes(&extra_line).is_err(),
            "a metric line beyond the declared count is trailing data"
        );

        // Reordered names break the strictly-ascending invariant.
        let unsorted = b"{\"format\":\"dapc-obs\",\"version\":1,\"metrics\":2}\n{\"kind\":\"counter\",\"name\":\"b\",\"value\":1}\n{\"kind\":\"counter\",\"name\":\"a\",\"value\":1}\n";
        assert!(
            MetricsSnapshot::from_bytes(unsorted).is_err(),
            "unsorted names"
        );

        let leading_zero = b"{\"format\":\"dapc-obs\",\"version\":1,\"metrics\":1}\n{\"kind\":\"counter\",\"name\":\"a\",\"value\":007}\n";
        assert!(
            MetricsSnapshot::from_bytes(leading_zero).is_err(),
            "leading zeros are non-canonical"
        );

        let bad_version = b"{\"format\":\"dapc-obs\",\"version\":9,\"metrics\":0}\n";
        assert!(
            MetricsSnapshot::from_bytes(bad_version).is_err(),
            "version skew"
        );
    }

    #[test]
    fn spans_nest_into_dotted_histogram_names() {
        set_enabled(true);
        {
            let _outer = span("testsolve");
            {
                let _inner = span("decompose");
            }
            {
                let _inner = span("verify");
            }
        }
        let snap = MetricsSnapshot::capture();
        for name in [
            "span.testsolve",
            "span.testsolve.decompose",
            "span.testsolve.verify",
        ] {
            match snap.get(name) {
                Some(SnapshotEntry::Histogram { count, .. }) => {
                    assert!(*count >= 1, "{name} recorded")
                }
                other => panic!("{name} missing or wrong kind: {other:?}"),
            }
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        set_enabled(false);
        {
            let _s = span("test-disabled-span-never-registered");
        }
        set_enabled(true);
        assert!(
            MetricsSnapshot::capture()
                .get("span.test-disabled-span-never-registered")
                .is_none(),
            "a disabled span must not touch the registry"
        );
    }

    #[test]
    fn render_is_stable_and_aligned() {
        let snap = MetricsSnapshot {
            entries: vec![
                SnapshotEntry::Counter {
                    name: "exec.task.help_runs".into(),
                    value: 3,
                },
                SnapshotEntry::Gauge {
                    name: "runtime.prep_cache.families".into(),
                    value: 2,
                },
                SnapshotEntry::Histogram {
                    name: "serve.daemon.ping_micros".into(),
                    count: 2,
                    sum: 30,
                    p50: 15,
                    p90: 31,
                    p99: 31,
                    buckets: vec![(4, 2)],
                },
            ],
        };
        let expected = "dapc-obs snapshot v1 (3 metrics)\n\
                        counter    exec.task.help_runs          3\n\
                        gauge      runtime.prep_cache.families  2\n\
                        histogram  serve.daemon.ping_micros     count=2 sum=30 p50=15 p90=31 p99=31\n";
        assert_eq!(snap.render(), expected);
    }

    #[test]
    fn periodic_flush_writes_on_drop() {
        set_enabled(true);
        counter("test.lib.flush_marker").inc();
        let dir = std::env::temp_dir().join("dapc-obs-flush-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.jsonl");
        {
            let _flush = PeriodicFlush::start(&path, Duration::from_secs(3600));
        }
        let bytes = std::fs::read(&path).expect("final flush wrote the file");
        let snap = MetricsSnapshot::from_bytes(&bytes).expect("flushed snapshot parses");
        assert!(snap.get("test.lib.flush_marker").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
