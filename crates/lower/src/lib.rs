//! # dapc-lower
//!
//! The Appendix B lower-bound machinery of Chang & Li (PODC 2023):
//! Theorem 1.4's `Ω(log n/ε)` round lower bounds for `(1 ± ε)`-approximate
//! maximum independent set, maximum cut, minimum vertex cover and minimum
//! dominating set, made *measurable*:
//!
//! * [`capped`] — round-capped randomised LOCAL algorithms (Luby-style
//!   greedy MIS / matching) whose quality–rounds trade-off the bounds
//!   constrain;
//! * [`harness`] — the indistinguishability experiment of Theorems
//!   B.2/B.6: identical per-vertex output distributions on locally
//!   isomorphic graphs (LPS bipartite vs non-bipartite, odd vs even
//!   cycles);
//! * [`reductions`] — the solution pull-backs through the subdivision
//!   `G_x` (Theorems B.3/B.7) and the dominating-set gadget `G*`
//!   (Theorem B.5), with their counting identities tested.
//!
//! ```
//! use dapc_graph::gen;
//! use dapc_lower::{capped, harness};
//!
//! // A 2-round algorithm cannot tell C17 (α < n/2) from C18 (α = n/2).
//! let rep = harness::indistinguishability(
//!     &gen::cycle(17), &gen::cycle(18), 2, 500, &mut gen::seeded_rng(0),
//!     |g, t, r| capped::greedy_mis_rounds(g, t, r));
//! assert!(rep.locally_identical);
//! assert!(rep.gap < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capped;
pub mod harness;
pub mod maxcut;
pub mod reductions;
