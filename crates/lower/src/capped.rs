//! Round-capped LOCAL algorithms — the objects the Appendix B lower bounds
//! quantify over.
//!
//! A `t`-round randomised LOCAL algorithm's output at `v` is a function of
//! the `t`-ball of `v` and the random bits inside it. The canonical example
//! used by the experiments is Luby-style random-priority greedy MIS: in
//! each round every undecided vertex draws a fresh priority and joins the
//! independent set iff it beats all undecided neighbours. Stopping after
//! `t` rounds yields a *valid* independent set whose size improves with
//! `t` — exactly the approximation/rounds trade-off Theorem 1.4 bounds.

use dapc_graph::{Graph, Vertex};
use rand::rngs::StdRng;
use rand::RngExt;

/// Runs `t` rounds of random-priority greedy MIS and returns the
/// membership mask (undecided vertices are left out, so the result is
/// always an independent set).
///
/// ```
/// use dapc_graph::gen;
/// use dapc_lower::capped::greedy_mis_rounds;
///
/// let g = gen::cycle(12);
/// let is = greedy_mis_rounds(&g, 3, &mut gen::seeded_rng(1));
/// for (u, v) in g.edges() {
///     assert!(!(is[u as usize] && is[v as usize]));
/// }
/// ```
pub fn greedy_mis_rounds(g: &Graph, t: usize, rng: &mut StdRng) -> Vec<bool> {
    let n = g.n();
    let mut in_set = vec![false; n];
    let mut decided = vec![false; n];
    for _ in 0..t {
        if decided.iter().all(|&d| d) {
            break;
        }
        let priority: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let mut joins: Vec<Vertex> = Vec::new();
        for v in 0..n {
            if decided[v] {
                continue;
            }
            let wins = g
                .neighbors(v as Vertex)
                .iter()
                .all(|&u| decided[u as usize] || priority[v] > priority[u as usize]);
            if wins {
                joins.push(v as Vertex);
            }
        }
        for v in joins {
            in_set[v as usize] = true;
            decided[v as usize] = true;
            for &u in g.neighbors(v) {
                decided[u as usize] = true;
            }
        }
    }
    in_set
}

/// Runs `t` rounds of random-priority greedy maximal matching (edges draw
/// priorities; local minima join). Returns the matched-edge list.
pub fn greedy_matching_rounds(g: &Graph, t: usize, rng: &mut StdRng) -> Vec<(Vertex, Vertex)> {
    let edges: Vec<(Vertex, Vertex)> = g.edges().collect();
    let mut edge_alive: Vec<bool> = vec![true; edges.len()];
    let mut vertex_free = vec![true; g.n()];
    let mut matched = Vec::new();
    // Edge adjacency via endpoints.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); g.n()];
    for (i, &(u, v)) in edges.iter().enumerate() {
        incident[u as usize].push(i);
        incident[v as usize].push(i);
    }
    for _ in 0..t {
        if edge_alive.iter().all(|&a| !a) {
            break;
        }
        let priority: Vec<f64> = (0..edges.len()).map(|_| rng.random::<f64>()).collect();
        let mut winners = Vec::new();
        'edge: for (i, &(u, v)) in edges.iter().enumerate() {
            if !edge_alive[i] {
                continue;
            }
            for &w in [u, v].iter() {
                for &j in &incident[w as usize] {
                    if j != i && edge_alive[j] && priority[j] > priority[i] {
                        continue 'edge;
                    }
                }
            }
            winners.push(i);
        }
        for i in winners {
            let (u, v) = edges[i];
            if vertex_free[u as usize] && vertex_free[v as usize] {
                matched.push((u, v));
                vertex_free[u as usize] = false;
                vertex_free[v as usize] = false;
            }
        }
        for (i, &(u, v)) in edges.iter().enumerate() {
            if !vertex_free[u as usize] || !vertex_free[v as usize] {
                edge_alive[i] = false;
            }
        }
    }
    matched
}

/// The complement view: a `t`-round vertex cover produced as "everything
/// except the `t`-round independent set" — used for the Theorem B.4
/// transfer experiments.
pub fn greedy_vc_rounds(g: &Graph, t: usize, rng: &mut StdRng) -> Vec<bool> {
    greedy_mis_rounds(g, t, rng)
        .into_iter()
        .map(|in_is| !in_is)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    #[test]
    fn mis_is_always_independent() {
        let mut rng = gen::seeded_rng(1);
        for t in [0usize, 1, 2, 5, 50] {
            let g = gen::gnp(60, 0.08, &mut rng);
            let is = greedy_mis_rounds(&g, t, &mut rng);
            for (u, v) in g.edges() {
                assert!(!(is[u as usize] && is[v as usize]), "t = {t}");
            }
        }
    }

    #[test]
    fn mis_grows_with_rounds() {
        let g = gen::gnp(300, 0.02, &mut gen::seeded_rng(2));
        let mut rng = gen::seeded_rng(3);
        let avg = |t: usize, rng: &mut _| -> f64 {
            let mut total = 0usize;
            for _ in 0..20 {
                total += greedy_mis_rounds(&g, t, rng).iter().filter(|&&b| b).count();
            }
            total as f64 / 20.0
        };
        let one = avg(1, &mut rng);
        let many = avg(12, &mut rng);
        assert!(many > one, "12 rounds ({many}) should beat 1 round ({one})");
    }

    #[test]
    fn enough_rounds_give_maximal_set() {
        let g = gen::cycle(30);
        let mut rng = gen::seeded_rng(4);
        let is = greedy_mis_rounds(&g, 100, &mut rng);
        // Maximal: every vertex is in the set or has a neighbour in it.
        for v in g.vertices() {
            assert!(
                is[v as usize] || g.neighbors(v).iter().any(|&u| is[u as usize]),
                "not maximal at {v}"
            );
        }
    }

    #[test]
    fn matching_is_valid_and_grows() {
        let g = gen::gnp(100, 0.05, &mut gen::seeded_rng(5));
        let mut rng = gen::seeded_rng(6);
        let m1 = greedy_matching_rounds(&g, 1, &mut rng);
        let m8 = greedy_matching_rounds(&g, 8, &mut rng);
        let mut used = [false; 100];
        for &(u, v) in &m8 {
            assert!(g.has_edge(u, v));
            assert!(!used[u as usize] && !used[v as usize]);
            used[u as usize] = true;
            used[v as usize] = true;
        }
        assert!(m8.len() >= m1.len());
    }

    #[test]
    fn vc_complement_covers_when_is_maximal() {
        let g = gen::grid(6, 6);
        let mut rng = gen::seeded_rng(7);
        let vc = greedy_vc_rounds(&g, 100, &mut rng);
        for (u, v) in g.edges() {
            assert!(vc[u as usize] || vc[v as usize]);
        }
    }

    #[test]
    fn zero_rounds_output_empty() {
        let g = gen::cycle(10);
        let is = greedy_mis_rounds(&g, 0, &mut gen::seeded_rng(8));
        assert!(is.iter().all(|&b| !b));
    }
}
