//! Round-capped maximum cut — the fourth problem of Theorem 1.4.
//!
//! Appendix B proves the `Ω(log n/ε)` bound for `(1 − ε)`-approximate
//! max-cut via the same indistinguishability engine (Theorem B.6: a
//! `t`-round algorithm has the same per-edge cut probability on every
//! locally-isomorphic graph, but bipartite LPS graphs have a full cut while
//! non-bipartite ones cap below `0.999·|E|`, Lemma B.1). The natural
//! round-capped algorithm here is local majority dynamics: start from a
//! random ±1 assignment and, for `t` synchronous rounds, flip every vertex
//! that would increase its local cut contribution (with a random tie-break
//! and odd/even scheduling to avoid oscillation).

use dapc_graph::{Graph, Vertex};
use rand::rngs::StdRng;
use rand::RngExt;

/// Runs `t` rounds of local cut-improving dynamics and returns the side of
/// each vertex.
///
/// Scheduling: every unhappy vertex (one whose flip would strictly improve
/// its local cut) draws a fresh random priority; only local maxima among
/// unhappy neighbours flip. The flipping set is therefore independent, so
/// every round with at least one flip strictly increases the global cut —
/// the dynamics converge to a local optimum instead of oscillating. This
/// is a genuine `O(1)`-round-per-step LOCAL protocol.
///
/// ```
/// use dapc_graph::gen;
/// use dapc_lower::maxcut::{cut_size, local_maxcut_rounds};
///
/// let g = gen::complete_bipartite(6, 6);
/// let side = local_maxcut_rounds(&g, 60, &mut gen::seeded_rng(3));
/// // Local dynamics reach a locally-optimal cut: ≥ m/2 on any graph.
/// assert!(cut_size(&g, &side) >= g.m() / 2);
/// ```
pub fn local_maxcut_rounds(g: &Graph, t: usize, rng: &mut StdRng) -> Vec<bool> {
    let n = g.n();
    let mut side: Vec<bool> = (0..n).map(|_| rng.random::<bool>()).collect();
    for _ in 0..t {
        let unhappy: Vec<bool> = (0..n)
            .map(|v| {
                let cut_now = g
                    .neighbors(v as Vertex)
                    .iter()
                    .filter(|&&u| side[u as usize] != side[v])
                    .count();
                2 * cut_now < g.degree(v as Vertex)
            })
            .collect();
        if !unhappy.iter().any(|&u| u) {
            break; // local optimum
        }
        let priority: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
        let mut flips: Vec<Vertex> = Vec::new();
        for v in 0..n {
            if !unhappy[v] {
                continue;
            }
            let is_local_max = g
                .neighbors(v as Vertex)
                .iter()
                .all(|&u| !unhappy[u as usize] || priority[v] > priority[u as usize]);
            if is_local_max {
                flips.push(v as Vertex);
            }
        }
        for v in flips {
            side[v as usize] = !side[v as usize];
        }
    }
    side
}

/// Number of edges crossing the bipartition.
pub fn cut_size(g: &Graph, side: &[bool]) -> usize {
    g.edges()
        .filter(|&(u, v)| side[u as usize] != side[v as usize])
        .count()
}

/// Lemma B.1's conversion, constructive direction: a cut missing `x` edges
/// yields an independent set of size `≥ (n − x)/2` (delete one endpoint of
/// every uncut edge, take the larger side of the remainder).
pub fn independent_set_from_cut(g: &Graph, side: &[bool]) -> Vec<bool> {
    let n = g.n();
    let mut removed = vec![false; n];
    for (u, v) in g.edges() {
        if side[u as usize] == side[v as usize] && !removed[u as usize] && !removed[v as usize] {
            removed[u as usize] = true;
        }
    }
    // The two sides are now independent sets; pick the larger.
    let count = |want: bool| (0..n).filter(|&v| !removed[v] && side[v] == want).count();
    let pick = count(true) >= count(false);
    (0..n).map(|v| !removed[v] && side[v] == pick).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::gen;

    #[test]
    fn converged_cuts_are_locally_optimal() {
        let g = gen::gnp(80, 0.06, &mut gen::seeded_rng(1));
        let side = local_maxcut_rounds(&g, 200, &mut gen::seeded_rng(2));
        for v in g.vertices() {
            let cut = g
                .neighbors(v)
                .iter()
                .filter(|&&u| side[u as usize] != side[v as usize])
                .count();
            assert!(
                2 * cut >= g.degree(v),
                "vertex {v} could improve the cut by flipping"
            );
        }
        // Local optimality implies at least half the edges are cut.
        assert!(cut_size(&g, &side) * 2 >= g.m());
    }

    #[test]
    fn bipartite_graphs_reach_full_cut_with_enough_rounds() {
        // On trees/forests local dynamics find the (full) bipartition cut.
        let g = gen::random_tree(60, &mut gen::seeded_rng(3));
        let side = local_maxcut_rounds(&g, 300, &mut gen::seeded_rng(4));
        // Trees: every edge cuttable; local optimum on a tree cuts every
        // edge incident to a leaf, and in practice converges to full cut.
        assert!(cut_size(&g, &side) * 2 >= g.m());
    }

    #[test]
    fn cut_grows_with_rounds() {
        let g = gen::gnp(200, 0.04, &mut gen::seeded_rng(5));
        let mut rng = gen::seeded_rng(6);
        let avg = |t: usize, rng: &mut _| -> f64 {
            (0..10)
                .map(|_| cut_size(&g, &local_maxcut_rounds(&g, t, rng)) as f64)
                .sum::<f64>()
                / 10.0
        };
        let zero = avg(0, &mut rng);
        let many = avg(20, &mut rng);
        assert!(
            many > zero,
            "20 rounds ({many}) must beat the random cut ({zero})"
        );
        // Random assignment cuts ≈ m/2.
        assert!((zero - g.m() as f64 / 2.0).abs() < g.m() as f64 * 0.15);
    }

    #[test]
    fn is_extraction_is_independent_and_counts() {
        let g = gen::gnp(50, 0.1, &mut gen::seeded_rng(7));
        let side = local_maxcut_rounds(&g, 50, &mut gen::seeded_rng(8));
        let is = independent_set_from_cut(&g, &side);
        for (u, v) in g.edges() {
            assert!(!(is[u as usize] && is[v as usize]), "({u},{v}) both in IS");
        }
        // Lemma B.1 counting: |I| >= (n − x)/2 with x = uncut edges.
        let x = g.m() - cut_size(&g, &side);
        let size = is.iter().filter(|&&b| b).count();
        assert!(
            size >= (g.n().saturating_sub(x)) / 2,
            "size {size} below the Lemma B.1 bound"
        );
    }

    #[test]
    fn indistinguishability_applies_to_cuts_too() {
        // Theorem B.6's mechanism on odd vs even cycles: a 2-round cut
        // algorithm achieves the same expected cut *fraction* on C17 and
        // C18, although C18 is bipartite (full cut possible) and C17 is
        // not.
        let a = gen::cycle(17);
        let b = gen::cycle(18);
        let mut rng = gen::seeded_rng(9);
        let mean_fraction = |g: &dapc_graph::Graph, rng: &mut _| -> f64 {
            (0..800)
                .map(|_| cut_size(g, &local_maxcut_rounds(g, 2, rng)) as f64 / g.m() as f64)
                .sum::<f64>()
                / 800.0
        };
        let fa = mean_fraction(&a, &mut rng);
        let fb = mean_fraction(&b, &mut rng);
        assert!(
            (fa - fb).abs() < 0.03,
            "2-round cut fractions diverge: {fa} vs {fb}"
        );
    }
}
