//! The reduction maps of Appendix B: pulling solutions back through the
//! subdivision `G_x` (Theorems B.3 and B.7) and the dominating-set gadget
//! `G*` (Theorem B.5).

use dapc_graph::subdivide::Subdivision;
use dapc_graph::{Graph, Vertex};
use rand::rngs::StdRng;
use rand::RngExt;

/// Theorem B.3's choice of subdivision parameter:
/// `x = ⌊(0.08·ε⁻¹ − 1)/18⌋` (zero for large ε, `Θ(1/ε)` for small ε).
pub fn theorem_b3_x(eps: f64) -> usize {
    assert!(eps > 0.0, "eps must be positive");
    let x = (0.08 / eps - 1.0) / 18.0;
    if x <= 0.0 {
        0
    } else {
        x.floor() as usize
    }
}

/// Theorem B.7's choice: `x = ⌊(0.001·ε⁻¹ − 1)/2⌋`.
pub fn theorem_b7_x(eps: f64) -> usize {
    assert!(eps > 0.0, "eps must be positive");
    let x = (0.001 / eps - 1.0) / 2.0;
    if x <= 0.0 {
        0
    } else {
        x.floor() as usize
    }
}

/// Extracts an independent set of the original graph `G` from an
/// independent set of the subdivision `G_x`, exactly as in the proof of
/// Theorem B.3: keep an original vertex `v ∈ I⋄` unless some neighbour
/// `u ∈ I⋄` has a smaller random identifier.
///
/// The output is always an independent set of `G`, and the proof
/// guarantees `|I| ≥ |I⋄| − 9x·|V|` for 18-regular graphs (more generally
/// `|I⋄| − (d/2)·x·|V|`).
///
/// # Panics
///
/// Panics if `is_gx` is not the size of the subdivided vertex set.
pub fn extract_is_from_subdivision(
    sub: &Subdivision,
    is_gx: &[bool],
    rng: &mut StdRng,
) -> Vec<bool> {
    assert_eq!(is_gx.len(), sub.graph.n(), "assignment length mismatch");
    let n = sub.original_n;
    // Random distinct identifiers via a random permutation.
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        ids.swap(i, j);
    }
    let mut out = vec![false; n];
    for v in 0..n {
        if !is_gx[v] {
            continue;
        }
        let keep = sub.original_edges.iter().all(|&(a, b)| {
            let u = if a as usize == v {
                Some(b)
            } else if b as usize == v {
                Some(a)
            } else {
                None
            };
            match u {
                Some(u) => !is_gx[u as usize] || ids[v] < ids[u as usize],
                None => true,
            }
        });
        if keep {
            out[v] = true;
        }
    }
    out
}

/// Extracts a cut of the original graph from a cut of the subdivision
/// (proof of Theorem B.7): original edge `e` joins the extracted cut iff an
/// **odd** number of the `2x + 1` path edges of `P_e` lie in the
/// subdivision's cut.
///
/// `cut_gx` is a predicate over subdivided edges in canonical order.
pub fn extract_cut_from_subdivision(
    sub: &Subdivision,
    cut_gx: &dyn Fn(Vertex, Vertex) -> bool,
) -> Vec<bool> {
    let mut out = vec![false; sub.original_edges.len()];
    for (e, &(u, v)) in sub.original_edges.iter().enumerate() {
        let mut path: Vec<Vertex> = Vec::with_capacity(2 * sub.x + 2);
        path.push(u);
        path.extend(sub.interior_of_edge(e));
        path.push(v);
        let k = path.windows(2).filter(|w| cut_gx(w[0], w[1])).count();
        out[e] = k % 2 == 1;
    }
    out
}

/// Converts a dominating set of the gadget graph `G*` into a vertex cover
/// of `G` of no larger size (proof of Theorem B.5): any selected gadget
/// vertex `w_e` is replaced by one endpoint of its edge.
///
/// # Panics
///
/// Panics if `ds` is not sized for `G*` (`g.n() + edges.len()`).
pub fn vc_from_gadget_dominating_set(
    g: &Graph,
    gadget_edges: &[(Vertex, Vertex)],
    ds: &[bool],
) -> Vec<bool> {
    assert_eq!(ds.len(), g.n() + gadget_edges.len(), "gadget size mismatch");
    let mut cover: Vec<bool> = ds[..g.n()].to_vec();
    for (e, &(u, _v)) in gadget_edges.iter().enumerate() {
        if ds[g.n() + e] {
            cover[u as usize] = true;
        }
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use dapc_graph::subdivide::{dominating_set_gadget, subdivide};
    use dapc_graph::{gen, Graph};
    use dapc_ilp::problems;
    use dapc_ilp::restrict::packing_restriction;
    use dapc_ilp::solvers::{self, SolverBudget};

    #[test]
    fn b3_and_b7_parameters() {
        assert_eq!(theorem_b3_x(0.04), 0); // 0.08/0.04 = 2 -> (2−1)/18 < 1
        assert!(theorem_b3_x(0.001) >= 4);
        assert_eq!(theorem_b7_x(0.001), 0); // boundary: (1−1)/2
        assert!(theorem_b7_x(0.0001) >= 4);
        // Theorem B.3's constraint ε·(18x+1) ≤ 0.08 holds.
        for eps in [0.04, 0.01, 0.001, 0.0003] {
            let x = theorem_b3_x(eps);
            assert!(eps * (18.0 * x as f64 + 1.0) <= 0.08 + 1e-12, "eps {eps}");
        }
    }

    #[test]
    fn extracted_is_is_independent() {
        let mut rng = gen::seeded_rng(11);
        let g = gen::complete_bipartite(5, 5);
        let sub = subdivide(&g, 2);
        // Exact IS on the subdivision.
        let ilp = problems::max_independent_set_unweighted(&sub.graph);
        let sol = solvers::solve(
            &packing_restriction(&ilp, &vec![true; sub.graph.n()]),
            &SolverBudget::default(),
        );
        let extracted = extract_is_from_subdivision(&sub, &sol.assignment, &mut rng);
        for (u, v) in g.edges() {
            assert!(!(extracted[u as usize] && extracted[v as usize]));
        }
        // The B.3 counting: |I| >= |I⋄| − (d/2)·x·|V| with d = 5 here.
        let kept = extracted.iter().filter(|&&b| b).count();
        let original_in_gx = (0..g.n()).filter(|&v| sol.assignment[v]).count();
        assert!(kept + 1 >= original_in_gx.saturating_sub(0), "kept {kept}");
    }

    #[test]
    fn subdivision_is_size_identity_on_bipartite_graphs() {
        // α(G_x) = α(G) + x·m for bipartite G (both sides of each path
        // alternate freely): verify on K_{3,3}.
        let g = gen::complete_bipartite(3, 3);
        let x = 1;
        let sub = subdivide(&g, x);
        let budget = SolverBudget::default();
        let alpha_g = {
            let ilp = problems::max_independent_set_unweighted(&g);
            dapc_ilp::verify::optimum(&ilp, &budget).0
        };
        let alpha_gx = {
            let ilp = problems::max_independent_set_unweighted(&sub.graph);
            dapc_ilp::verify::optimum(&ilp, &budget).0
        };
        assert_eq!(alpha_gx, alpha_g + (x * g.m()) as u64);
    }

    #[test]
    fn extracted_cut_parity() {
        let g = gen::cycle(4);
        let sub = subdivide(&g, 1);
        // A proper 2-colouring of the (bipartite) subdivision induces a
        // full cut; its pull-back must be a full cut of C4.
        let side = sub
            .graph
            .bipartition()
            .expect("subdivision of C4 bipartite");
        let cut = extract_cut_from_subdivision(&sub, &|u, v| side[u as usize] != side[v as usize]);
        assert!(
            cut.iter().all(|&c| c),
            "full cut must pull back to full cut"
        );
    }

    #[test]
    fn empty_cut_pulls_back_empty() {
        let g = gen::cycle(5);
        let sub = subdivide(&g, 2);
        let cut = extract_cut_from_subdivision(&sub, &|_, _| false);
        assert!(cut.iter().all(|&c| !c));
    }

    #[test]
    fn gadget_ds_converts_to_vc() {
        let g = gen::cycle(6);
        let (gstar, edges) = dominating_set_gadget(&g);
        // Exact minimum dominating set of G*.
        let ilp = problems::min_dominating_set_unweighted(&gstar);
        let budget = SolverBudget::default();
        let sub = dapc_ilp::restrict::covering_restriction(&ilp, &vec![true; gstar.n()]);
        let sol = solvers::solve(&sub, &budget);
        let cover = vc_from_gadget_dominating_set(&g, &edges, &sol.assignment);
        // It must be a vertex cover of G of size <= |DS|.
        for (u, v) in g.edges() {
            assert!(cover[u as usize] || cover[v as usize]);
        }
        let cover_size = cover.iter().filter(|&&b| b).count() as u64;
        assert!(cover_size <= sol.value);
        // And Theorem B.5's identity γ(G*) = τ(G): check against exact VC.
        let vc = problems::min_vertex_cover_unweighted(&g);
        let tau = dapc_ilp::verify::optimum(&vc, &budget).0;
        assert_eq!(sol.value, tau);
    }

    #[test]
    fn gadget_identity_on_random_graphs() {
        let mut rng = gen::seeded_rng(13);
        let budget = SolverBudget::default();
        for _ in 0..5 {
            let g = gen::gnp(10, 0.35, &mut rng);
            if g.m() == 0 {
                continue;
            }
            let (gstar, _) = dominating_set_gadget(&g);
            let ds = problems::min_dominating_set_unweighted(&gstar);
            let vc = problems::min_vertex_cover_unweighted(&g);
            let gamma = dapc_ilp::verify::optimum(&ds, &budget).0;
            let tau = dapc_ilp::verify::optimum(&vc, &budget).0;
            // Theorem B.5 assumes no isolated vertices; each isolated
            // vertex must self-dominate in G* but never needs covering,
            // so the identity shifts by exactly their count.
            let isolated = g.vertices().filter(|&v| g.degree(v) == 0).count() as u64;
            assert_eq!(gamma, tau + isolated, "γ(G*) = τ(G) + iso failed on {g}");
        }
    }

    #[test]
    fn extraction_loss_is_bounded_on_subdivided_regular_graphs() {
        // Quantitative B.3 check on the 4-regular circulant C12(1,2).
        let mut edges = Vec::new();
        for i in 0..12u32 {
            edges.push((i, (i + 1) % 12));
            edges.push((i, (i + 2) % 12));
        }
        let g = Graph::from_edges(12, &edges);
        let x = 1;
        let sub = subdivide(&g, x);
        let ilp = problems::max_independent_set_unweighted(&sub.graph);
        let sol = solvers::solve(
            &packing_restriction(&ilp, &vec![true; sub.graph.n()]),
            &SolverBudget::default(),
        );
        let extracted =
            extract_is_from_subdivision(&sub, &sol.assignment, &mut gen::seeded_rng(14));
        let kept = extracted.iter().filter(|&&b| b).count();
        // |I| >= |I⋄| − (d/2)·x·n = |I⋄| − 2·1·12.
        assert!(kept as i64 >= sol.value as i64 - 24);
    }
}
