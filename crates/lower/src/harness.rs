//! The indistinguishability harness (Theorem B.2 / B.6).
//!
//! On a `d`-regular graph of girth `> 2t + 1`, the `t`-ball of every vertex
//! is the complete `d`-regular tree of depth `t`, so any `t`-round
//! randomised algorithm has the *same* per-vertex inclusion probability
//! `p*` on every such graph. Running one algorithm on the bipartite and the
//! non-bipartite member of the LPS family therefore forces
//! `E[|I|] = p*·n` on both — but the bipartite graph has `α = n/2` while
//! the non-bipartite one has `α ≤ 2√p/(p+1)·n`, so no `t`-round algorithm
//! can be a good approximation on both. This module measures exactly that.

use dapc_core::engine::{self, SolveConfig};
use dapc_graph::{girth, Graph};
use dapc_ilp::problems;
use dapc_local::RoundCost;
use rand::rngs::StdRng;
use rand::RngExt;

/// Estimated per-vertex inclusion statistics of a randomised vertex-subset
/// algorithm.
#[derive(Clone, Debug)]
pub struct InclusionProfile {
    /// Mean of `|I|/n` over the trials.
    pub mean_fraction: f64,
    /// Per-vertex empirical inclusion frequencies.
    pub per_vertex: Vec<f64>,
    /// Number of trials.
    pub trials: usize,
}

impl InclusionProfile {
    /// Largest deviation of any vertex's inclusion frequency from the mean
    /// — on a locally-homogeneous graph this is pure sampling noise.
    pub fn max_vertex_deviation(&self) -> f64 {
        self.per_vertex
            .iter()
            .map(|&p| (p - self.mean_fraction).abs())
            .fold(0.0, f64::max)
    }
}

/// Estimates the inclusion profile of `algorithm` over `trials` runs.
pub fn inclusion_profile(
    g: &Graph,
    trials: usize,
    rng: &mut StdRng,
    mut algorithm: impl FnMut(&Graph, &mut StdRng) -> Vec<bool>,
) -> InclusionProfile {
    let n = g.n();
    let mut counts = vec![0usize; n];
    for _ in 0..trials {
        let out = algorithm(g, rng);
        assert_eq!(out.len(), n, "algorithm output length mismatch");
        for (v, &b) in out.iter().enumerate() {
            if b {
                counts[v] += 1;
            }
        }
    }
    let per_vertex: Vec<f64> = counts.iter().map(|&c| c as f64 / trials as f64).collect();
    let mean_fraction = per_vertex.iter().sum::<f64>() / n as f64;
    InclusionProfile {
        mean_fraction,
        per_vertex,
        trials,
    }
}

/// Outcome of the two-graph indistinguishability experiment.
#[derive(Clone, Debug)]
pub struct IndistinguishabilityReport {
    /// Mean `|I|/n` on the first graph.
    pub mean_a: f64,
    /// Mean `|I|/n` on the second graph.
    pub mean_b: f64,
    /// `|mean_a − mean_b|` — should be sampling noise below the locality
    /// threshold.
    pub gap: f64,
    /// Round cap used.
    pub rounds: usize,
    /// Whether both graphs are locally tree-like at radius `rounds`
    /// (girth `> 2·rounds + 1`), i.e. the theorem's hypothesis holds.
    pub locally_identical: bool,
}

/// Runs the same round-capped algorithm on two graphs and reports the gap
/// in expected output fractions (Theorem B.2's quantity).
pub fn indistinguishability(
    a: &Graph,
    b: &Graph,
    rounds: usize,
    trials: usize,
    rng: &mut StdRng,
    mut algorithm: impl FnMut(&Graph, usize, &mut StdRng) -> Vec<bool>,
) -> IndistinguishabilityReport {
    let pa = inclusion_profile(a, trials, rng, |g, r| algorithm(g, rounds, r));
    let pb = inclusion_profile(b, trials, rng, |g, r| algorithm(g, rounds, r));
    let locally_identical =
        girth::locally_tree_like(a, rounds as u32) && girth::locally_tree_like(b, rounds as u32);
    IndistinguishabilityReport {
        mean_a: pa.mean_fraction,
        mean_b: pb.mean_fraction,
        gap: (pa.mean_fraction - pb.mean_fraction).abs(),
        rounds,
        locally_identical,
    }
}

/// Outcome of running an *engine-registry* backend through the two-graph
/// experiment: the same quantities as [`IndistinguishabilityReport`], plus
/// the rounds the backend actually spent.
///
/// The upper-bound algorithms are not round-capped, so the interesting
/// reading is inverted: a backend that *does* separate the two graphs
/// (achieves `gap` ≳ the α-density difference) must have spent rounds
/// beyond the locality threshold — `locally_identical` is then `false`,
/// which is exactly Theorem 1.4's claim that `Ω(log n/ε)` rounds are
/// necessary, witnessed from the algorithm side.
#[derive(Clone, Debug)]
pub struct RegistryGapReport {
    /// Mean `|I|/n` on the first graph.
    pub mean_a: f64,
    /// Mean `|I|/n` on the second graph.
    pub mean_b: f64,
    /// `|mean_a − mean_b|`.
    pub gap: f64,
    /// Largest LOCAL round count any trial charged.
    pub max_rounds: usize,
    /// Whether both graphs are still tree-like at radius `max_rounds` —
    /// for a sound solver on distinguishable graphs this must be `false`.
    pub locally_identical: bool,
}

/// Estimates the inclusion profile of an engine-registry backend solving
/// maximum independent set on `g`, alongside the largest round count it
/// charged. Each trial derives a fresh backend seed from `rng`, so trials
/// are independent; the ILP is built once.
///
/// This is the registry-level counterpart of [`inclusion_profile`]: the
/// harness quantifies over the same `dapc_core::engine` backends the
/// experiment tables and the batch runtime use, instead of private
/// params-level entry points.
///
/// # Panics
///
/// Panics if `backend` is not a registered engine backend.
pub fn registry_inclusion_profile(
    g: &Graph,
    backend: &str,
    cfg: &SolveConfig,
    trials: usize,
    rng: &mut StdRng,
) -> (InclusionProfile, usize) {
    let ilp = problems::max_independent_set_unweighted(g);
    let mut max_rounds = 0usize;
    let profile = inclusion_profile(g, trials, rng, |_, r| {
        let seeded = cfg.clone().seed(r.random());
        let report = engine::solve(backend, &ilp, &seeded)
            .unwrap_or_else(|| panic!("unknown engine backend {backend:?}"));
        max_rounds = max_rounds.max(report.rounds());
        report.assignment
    });
    (profile, max_rounds)
}

/// Runs one engine-registry backend on two graphs and reports the output
/// -density gap next to the rounds it spent (Theorem 1.4 from the
/// algorithm side: beating the B.2 indistinguishability obstruction
/// requires rounds past the locality threshold).
///
/// # Panics
///
/// Panics if `backend` is not a registered engine backend.
pub fn registry_indistinguishability(
    a: &Graph,
    b: &Graph,
    backend: &str,
    cfg: &SolveConfig,
    trials: usize,
    rng: &mut StdRng,
) -> RegistryGapReport {
    let (pa, rounds_a) = registry_inclusion_profile(a, backend, cfg, trials, rng);
    let (pb, rounds_b) = registry_inclusion_profile(b, backend, cfg, trials, rng);
    let max_rounds = rounds_a.max(rounds_b);
    let locally_identical = girth::locally_tree_like(a, max_rounds as u32)
        && girth::locally_tree_like(b, max_rounds as u32);
    RegistryGapReport {
        mean_a: pa.mean_fraction,
        mean_b: pb.mean_fraction,
        gap: (pa.mean_fraction - pb.mean_fraction).abs(),
        max_rounds,
        locally_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capped::greedy_mis_rounds;
    use dapc_graph::gen;

    #[test]
    fn profile_counts_correctly() {
        let g = gen::path(4);
        // Deterministic "algorithm": always pick even vertices.
        let p = inclusion_profile(&g, 10, &mut gen::seeded_rng(1), |g, _| {
            (0..g.n()).map(|v| v % 2 == 0).collect()
        });
        assert_eq!(p.per_vertex, vec![1.0, 0.0, 1.0, 0.0]);
        assert!((p.mean_fraction - 0.5).abs() < 1e-12);
        assert!((p.max_vertex_deviation() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn regular_tree_like_graphs_have_flat_profiles() {
        // On a long cycle every t-ball is a path: per-vertex inclusion
        // probabilities are identical, deviations are sampling noise.
        let g = gen::cycle(60);
        let p = inclusion_profile(&g, 400, &mut gen::seeded_rng(2), |g, r| {
            greedy_mis_rounds(g, 2, r)
        });
        assert!(
            p.max_vertex_deviation() < 0.12,
            "deviation {} too large for a vertex-transitive graph",
            p.max_vertex_deviation()
        );
    }

    #[test]
    fn identical_graphs_have_zero_expected_gap() {
        let g = gen::cycle(40);
        let rep = indistinguishability(&g, &g, 2, 300, &mut gen::seeded_rng(3), greedy_mis_rounds);
        assert!(rep.gap < 0.05, "gap {} should be sampling noise", rep.gap);
        assert!(rep.locally_identical);
    }

    #[test]
    fn locality_flag_tracks_girth() {
        let a = gen::cycle(9); // girth 9: tree-like up to r = 3
        let b = gen::cycle(12);
        let rep = indistinguishability(&a, &b, 3, 5, &mut gen::seeded_rng(4), |g, t, r| {
            greedy_mis_rounds(g, t, r)
        });
        assert!(rep.locally_identical);
        let rep2 = indistinguishability(&a, &b, 4, 5, &mut gen::seeded_rng(5), |g, t, r| {
            greedy_mis_rounds(g, t, r)
        });
        assert!(!rep2.locally_identical);
    }

    #[test]
    fn registry_backends_run_through_the_harness() {
        // The engine's MIS output is always a valid independent set, and
        // the registry profile must reflect that (fractions in [0, 1/2]
        // on a cycle) while reporting positive round counts.
        let g = gen::cycle(18);
        let cfg = SolveConfig::new().eps(0.3);
        let (profile, rounds) =
            registry_inclusion_profile(&g, "three-phase", &cfg, 4, &mut gen::seeded_rng(11));
        assert_eq!(profile.trials, 4);
        assert!(profile.mean_fraction > 0.0 && profile.mean_fraction <= 0.5);
        assert!(rounds > 0);
    }

    #[test]
    fn registry_solver_separates_odd_from_even_cycles() {
        // The inverse of the capped-algorithm experiments: a *sound*
        // (1 − ε)-approximation distinguishes C17 (α/n = 8/17) from C18
        // (α/n = 1/2) — and must therefore have spent rounds beyond the
        // locality threshold of the pair.
        let a = gen::cycle(17);
        let b = gen::cycle(18);
        let cfg = SolveConfig::new().eps(0.2);
        let rep = registry_indistinguishability(&a, &b, "bnb", &cfg, 2, &mut gen::seeded_rng(12));
        assert!(rep.mean_a < rep.mean_b, "α densities must separate");
        assert!(
            !rep.locally_identical,
            "a separating solver cannot sit below the locality threshold"
        );
    }

    #[test]
    fn odd_vs_even_cycles_agree_below_locality_threshold() {
        // C17 vs C18: α = 8/17 ≈ 0.47 vs 9/18 = 0.5, but a 2-round
        // algorithm sees identical 2-balls (paths) everywhere.
        let a = gen::cycle(17);
        let b = gen::cycle(18);
        let rep = indistinguishability(&a, &b, 2, 2000, &mut gen::seeded_rng(6), greedy_mis_rounds);
        assert!(rep.locally_identical);
        assert!(
            rep.gap < 0.03,
            "2-round algorithm distinguishes C17 from C18: gap {}",
            rep.gap
        );
    }
}
