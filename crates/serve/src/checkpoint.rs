//! The on-disk layout of a checkpointed sweep.
//!
//! A sweep directory holds one [`SweepManifest`] (`manifest.bin`) that
//! pins the directory to a [`CorpusSpec`] and records which job ranges
//! are known done, plus one part file per completed checkpoint unit —
//! `part-{start:08}-{end:08}.bin`, a [`PartReport`] snapshot covering
//! exactly the named canonical job range.
//!
//! Three rules make crashes harmless:
//!
//! 1. **Part files appear atomically.** Workers serialise to a dotted
//!    temporary in the same directory and `rename` into place, so a
//!    scan never observes a half-written part — at worst a leftover
//!    temporary it ignores.
//! 2. **The scan trusts nothing.** A part that fails to load, belongs
//!    to a different corpus size, covers a range other than its name
//!    claims, or overlaps an already-accepted part is *skipped* (and
//!    counted), exactly as if the worker had never finished it — the
//!    all-or-nothing loader discipline turned into scheduling.
//! 3. **Parts are the ground truth.** The manifest's `done` ranges are
//!    a cross-checked cache for reporting; coverage is always recomputed
//!    from the part files a resume can actually load.

use crate::spec::CorpusSpec;
use dapc_runtime::{snap, PartReport};
use std::fs;
use std::io::{self, Read};
use std::ops::Range;
use std::path::{Path, PathBuf};

/// Magic + version prefix of `manifest.bin`. Version 2 appends a
/// 16-byte FNV-1a-128 seal over every preceding byte — a flipped or
/// truncated manifest must fail to load (exit 4), never half-load.
pub const MANIFEST_MAGIC: &[u8; 8] = dapc_core::snapmagic::MANIFEST.bytes;

/// File name of the sweep manifest inside a sweep directory.
pub const MANIFEST_FILE: &str = "manifest.bin";

/// What a sweep directory is sweeping, and how far it has come.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepManifest {
    /// The sweep being checkpointed; resuming against a directory whose
    /// manifest holds a different spec is refused.
    pub spec: CorpusSpec,
    /// Total jobs of the corpus (`spec.grid_len()`, denormalised so a
    /// reader needs no corpus to interpret the ranges).
    pub corpus_jobs: usize,
    /// Checkpoint unit: workers cut their assigned ranges at multiples
    /// of this many jobs and emit one part file per piece.
    pub unit: usize,
    /// Job ranges known complete, in normal form (sorted, disjoint,
    /// coalesced). Advisory — [`scan_parts`] is authoritative.
    pub done: Vec<Range<usize>>,
}

impl SweepManifest {
    /// Creates the manifest of a fresh sweep (nothing done yet).
    pub fn new(spec: CorpusSpec, unit: usize) -> Self {
        let corpus_jobs = spec.grid_len();
        SweepManifest {
            spec,
            corpus_jobs,
            unit: unit.max(1),
            done: Vec::new(),
        }
    }

    /// Writes the manifest in its versioned binary form.
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_to<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MANIFEST_MAGIC);
        snap::write_bytes(&mut buf, &self.spec.to_bytes())?;
        snap::write_u64(&mut buf, self.corpus_jobs as u64)?;
        snap::write_u64(&mut buf, self.unit as u64)?;
        snap::write_u64(&mut buf, self.done.len() as u64)?;
        for r in &self.done {
            snap::write_u64(&mut buf, r.start as u64)?;
            snap::write_u64(&mut buf, r.end as u64)?;
        }
        snap::seal(&mut buf);
        w.write_all(&buf)
    }

    /// Reads and validates a manifest: the embedded spec must itself
    /// load (and validate), `corpus_jobs` must equal the spec's grid,
    /// and the `done` ranges must be in normal form inside the corpus.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on any violation
    /// (including a failed seal check), with
    /// [`io::ErrorKind::UnexpectedEof`] on truncation at any byte.
    pub fn load_from<R: io::Read>(r: R) -> io::Result<Self> {
        let mut r = snap::SealingReader::new(dapc_chaos::corrupt_reader("manifest.load", r));
        snap::check_magic(&mut r, MANIFEST_MAGIC, "sweep-manifest")?;
        let spec_bytes = snap::read_bytes(&mut r, "embedded spec")?;
        let mut spec_slice = spec_bytes.as_slice();
        let spec = CorpusSpec::load_from(&mut spec_slice)?;
        if !spec_slice.is_empty() {
            return Err(snap::invalid("trailing bytes after the embedded spec"));
        }
        let corpus_jobs = snap::read_u64(&mut r)? as usize;
        if corpus_jobs != spec.grid_len() {
            return Err(snap::invalid(format!(
                "manifest claims {corpus_jobs} jobs but its spec spans {}",
                spec.grid_len()
            )));
        }
        let unit = snap::read_u64(&mut r)? as usize;
        if unit == 0 {
            return Err(snap::invalid("zero checkpoint unit"));
        }
        let count = snap::read_u64(&mut r)?;
        if count > corpus_jobs as u64 {
            return Err(snap::invalid(format!(
                "{count} done ranges exceed the {corpus_jobs}-job corpus"
            )));
        }
        let mut done = Vec::with_capacity(count as usize);
        let mut watermark = 0usize;
        for _ in 0..count {
            let start = snap::read_u64(&mut r)? as usize;
            let end = snap::read_u64(&mut r)? as usize;
            if start >= end || end > corpus_jobs {
                return Err(snap::invalid(format!(
                    "done range {start}..{end} is not in normal form"
                )));
            }
            if !done.is_empty() && start <= watermark {
                return Err(snap::invalid(format!(
                    "done range {start}..{end} is unsorted or uncoalesced at {watermark}"
                )));
            }
            watermark = end;
            done.push(start..end);
        }
        r.verify_seal("sweep-manifest")?;
        // Self-delimiting: anything further is corruption.
        let mut trailing = [0u8; 1];
        if r.read(&mut trailing)? != 0 {
            return Err(snap::invalid("trailing bytes after the manifest"));
        }
        Ok(SweepManifest {
            spec,
            corpus_jobs,
            unit,
            done,
        })
    }

    /// Atomically writes the manifest into `dir` (temporary + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn store(&self, dir: &Path) -> io::Result<()> {
        let mut bytes = Vec::new();
        self.save_to(&mut bytes)?;
        let tmp = dir.join(".manifest.tmp");
        fs::write(&tmp, &bytes)?;
        fs::rename(&tmp, dir.join(MANIFEST_FILE))
    }

    /// Loads the manifest of `dir`, or `Ok(None)` when the directory has
    /// none yet (a fresh sweep).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; a present-but-corrupt manifest is
    /// an error, not `None` — the directory belongs to *some* sweep and
    /// silently restarting could mix checkpoints of different corpora.
    pub fn load(dir: &Path) -> io::Result<Option<Self>> {
        match fs::File::open(dir.join(MANIFEST_FILE)) {
            Ok(f) => Self::load_from(io::BufReader::new(f)).map(Some),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// The part file name of a covered range.
pub fn part_file_name(range: &Range<usize>) -> String {
    format!("part-{:08}-{:08}.bin", range.start, range.end)
}

fn parse_part_file_name(name: &str) -> Option<Range<usize>> {
    let rest = name.strip_prefix("part-")?.strip_suffix(".bin")?;
    let (start, end) = rest.split_once('-')?;
    if start.len() != 8 || end.len() != 8 {
        return None;
    }
    Some(start.parse().ok()?..end.parse().ok()?)
}

/// Atomically persists one completed checkpoint unit into `dir` and
/// returns its final path. The part must cover exactly one contiguous
/// range (the normal [`dapc_runtime::solve_range`] product).
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] when the part covers zero
/// or several ranges; propagates filesystem errors.
pub fn write_part(dir: &Path, part: &PartReport) -> io::Result<PathBuf> {
    let covered = part.covered();
    let range = match covered.as_slice() {
        [one] => one.clone(),
        _ => {
            return Err(snap::invalid(format!(
                "a part file holds one contiguous range, got {covered:?}"
            )))
        }
    };
    // Timed as one unit: serialisation plus the atomic publish — the
    // span a crashing worker would forfeit.
    // dapc-allow(wall-clock): checkpoint-publish telemetry only, gated on dapc_obs::enabled
    let started = dapc_obs::enabled().then(std::time::Instant::now);
    let mut bytes = Vec::new();
    part.save_to(&mut bytes)?;
    let path = dir.join(part_file_name(&range));
    let tmp = dir.join(format!(".{}.tmp", part_file_name(&range)));
    // Chaos faults model every way a real write can go wrong, always on
    // the *sealed* byte stream: a torn temporary (crash mid-write), a
    // leaked temporary (crash between write and rename), or a published
    // part with a flipped byte — which the seal catches at the next
    // load, so it re-solves instead of merging wrong.
    if let Some(mut roll) = dapc_chaos::roll("part.write") {
        match roll.pick(3) {
            0 => {
                let keep = roll.pick(bytes.len().max(2) - 1) + 1;
                fs::write(&tmp, &bytes[..keep])?;
                return Err(io::Error::other("chaos: part write torn mid-file"));
            }
            1 => {
                fs::write(&tmp, &bytes)?;
                return Err(io::Error::other("chaos: part rename lost"));
            }
            _ => {
                let at = roll.pick(bytes.len());
                bytes[at] ^= 1 << roll.pick(8);
            }
        }
    }
    fs::write(&tmp, &bytes)?;
    fs::rename(&tmp, &path)?;
    if let Some(started) = started {
        write_micros().observe_micros(started.elapsed());
    }
    Ok(path)
}

/// Name of the sub-directory corrupt part files are moved into by
/// [`scan_parts`] instead of being deleted or aborting the resume.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Removes stale dotted `*.tmp` files a crashed worker left in `dir`
/// (a crash between `write` and `rename` leaks one forever), returning
/// how many were collected. Safe to run whenever no worker is writing —
/// finished parts only ever appear via rename, never as temporaries.
///
/// # Errors
///
/// Propagates directory-listing errors; a single failed removal is
/// skipped (the file may have just been renamed into place).
pub fn gc_stale_tmp(dir: &Path) -> io::Result<usize> {
    let mut collected = 0usize;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with('.') && name.ends_with(".tmp") && fs::remove_file(entry.path()).is_ok()
        {
            collected += 1;
        }
    }
    Ok(collected)
}

/// Latency of [`write_part`] (`serve.checkpoint.write_micros`).
fn write_micros() -> &'static dapc_obs::Histogram {
    static H: std::sync::OnceLock<dapc_obs::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| dapc_obs::histogram("serve.checkpoint.write_micros"))
}

/// What [`scan_parts`] salvaged from a sweep directory.
#[derive(Debug, Default)]
pub struct Scan {
    /// Every loadable, mutually disjoint part, sorted by start index.
    pub parts: Vec<PartReport>,
    /// Their coverage in normal form.
    pub covered: Vec<Range<usize>>,
    /// Total jobs covered.
    pub jobs_done: usize,
    /// Files that looked like parts but were torn, foreign or
    /// overlapping — ignored as if never written. Includes the
    /// quarantined ones.
    pub skipped: usize,
    /// The subset of `skipped` that failed to *load* (torn or corrupt
    /// bytes) and was moved into [`QUARANTINE_DIR`] for post-mortem
    /// instead of being rescanned forever.
    pub quarantined: usize,
}

/// Scans `dir` for salvageable checkpoints of a `corpus_jobs`-job
/// sweep. Unreadable, corrupt, foreign-corpus, misnamed and overlapping
/// part files are skipped (and counted), never fatal: a torn checkpoint
/// means "this range was never completed", the coordinator will just
/// resolve it. Parts whose *bytes* fail to load (torn writes, flipped
/// bits the seal caught) are additionally moved into
/// [`QUARANTINE_DIR`], so the evidence survives for post-mortem and a
/// resumed sweep does not re-parse the same corpse on every rescan.
///
/// # Errors
///
/// Propagates directory-listing errors only.
pub fn scan_parts(dir: &Path, corpus_jobs: usize) -> io::Result<Scan> {
    let mut found: Vec<(Range<usize>, PartReport)> = Vec::new();
    let mut skipped = 0usize;
    let mut quarantined = 0usize;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(claim) = name.to_str().and_then(parse_part_file_name) else {
            continue; // not a part file (manifest, temporary, stranger)
        };
        // One retry before condemning the file: a transient read fault
        // is indistinguishable from corruption on a single pass, but
        // corrupt bytes fail every load while a flaky read usually
        // doesn't fail twice.
        let load = || {
            fs::File::open(entry.path())
                .map(io::BufReader::new)
                .and_then(PartReport::load_from)
        };
        let part = match load().or_else(|_| load()) {
            Ok(p) => p,
            Err(_) => {
                skipped += 1;
                if quarantine(dir, &entry.path()) {
                    quarantined += 1;
                }
                continue;
            }
        };
        if part.corpus_jobs != corpus_jobs || part.covered() != vec![claim.clone()] {
            skipped += 1;
            continue;
        }
        found.push((claim, part));
    }
    found.sort_by_key(|(claim, _)| claim.start);
    let mut scan = Scan {
        skipped,
        quarantined,
        ..Scan::default()
    };
    let mut watermark = 0usize;
    for (claim, part) in found {
        if !scan.parts.is_empty() && claim.start < watermark {
            scan.skipped += 1; // overlaps an already-accepted part
            continue;
        }
        watermark = claim.end;
        scan.jobs_done += part.jobs;
        scan.parts.push(part);
    }
    scan.covered = coalesce(scan.parts.iter().flat_map(|p| p.covered()).collect());
    Ok(scan)
}

/// Moves an unloadable part file into `dir/quarantine/`, returning
/// whether the move succeeded. Collisions get a numeric suffix; any
/// filesystem failure leaves the file where it was (the scan already
/// skipped it — quarantine is best-effort evidence preservation, never
/// a new failure mode).
fn quarantine(dir: &Path, path: &Path) -> bool {
    let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
        return false;
    };
    let pen = dir.join(QUARANTINE_DIR);
    if fs::create_dir_all(&pen).is_err() {
        return false;
    }
    let mut target = pen.join(name);
    let mut suffix = 1u32;
    while target.exists() {
        target = pen.join(format!("{name}.{suffix}"));
        suffix += 1;
        if suffix > 1000 {
            return false;
        }
    }
    fs::rename(path, &target).is_ok()
}

/// Normalises ranges: sorted, disjoint input ranges with adjacent runs
/// coalesced.
fn coalesce(mut ranges: Vec<Range<usize>>) -> Vec<Range<usize>> {
    ranges.sort_by_key(|r| r.start);
    let mut out: Vec<Range<usize>> = Vec::new();
    for r in ranges {
        match out.last_mut() {
            Some(last) if last.end == r.start => last.end = r.end,
            _ => out.push(r),
        }
    }
    out
}

/// The complement of `covered` (normal form, within `0..corpus_jobs`):
/// the job ranges a resumed sweep still owes.
pub fn uncovered(corpus_jobs: usize, covered: &[Range<usize>]) -> Vec<Range<usize>> {
    let mut out = Vec::new();
    let mut cursor = 0usize;
    for r in covered {
        if cursor < r.start {
            out.push(cursor..r.start);
        }
        cursor = cursor.max(r.end);
    }
    if cursor < corpus_jobs {
        out.push(cursor..corpus_jobs);
    }
    out
}

/// Cuts `range` at global multiples of `unit`, so every produced piece
/// has a deterministic name regardless of which worker (or attempt)
/// solves it — the alignment that lets a resumed or reassigned range
/// reuse checkpoints of its predecessor.
pub fn unit_grid(range: Range<usize>, unit: usize) -> Vec<Range<usize>> {
    let unit = unit.max(1);
    let mut out = Vec::new();
    let mut cursor = range.start;
    while cursor < range.end {
        let cut = ((cursor / unit) + 1) * unit;
        let end = cut.min(range.end);
        out.push(cursor..end);
        cursor = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> CorpusSpec {
        CorpusSpec::parse_args(["ring=mis:cycle:12", "@backends=greedy", "@seeds=0..6"]).unwrap()
    }

    #[test]
    fn manifest_round_trips_and_rejects_corruption() {
        let mut m = SweepManifest::new(demo_spec(), 2);
        m.done = vec![0..2, 4..6];
        let mut bytes = Vec::new();
        m.save_to(&mut bytes).unwrap();
        assert_eq!(SweepManifest::load_from(bytes.as_slice()).unwrap(), m);
        for cut in 0..bytes.len() {
            assert!(
                SweepManifest::load_from(&bytes[..cut]).is_err(),
                "manifest prefix of {cut} bytes must not load"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(SweepManifest::load_from(padded.as_slice()).is_err());
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // single-range vecs are the fixtures here
    fn manifest_rejects_non_normal_done_ranges() {
        let spec = demo_spec();
        for done in [
            vec![2..2],       // empty
            vec![0..99],      // beyond the corpus
            vec![2..4, 0..2], // unsorted (also touching)
            vec![0..2, 2..4], // touching, not coalesced
            vec![0..3, 2..5], // overlapping
        ] {
            let mut m = SweepManifest::new(spec.clone(), 2);
            m.done = done.clone();
            let mut bytes = Vec::new();
            m.save_to(&mut bytes).unwrap();
            assert!(
                SweepManifest::load_from(bytes.as_slice()).is_err(),
                "{done:?} must be rejected"
            );
        }
    }

    #[test]
    fn part_file_names_round_trip() {
        let r = 7..19;
        assert_eq!(part_file_name(&r), "part-00000007-00000019.bin");
        assert_eq!(parse_part_file_name(&part_file_name(&r)), Some(r));
        for bad in [
            "part-1-2.bin",
            "part-00000007-00000019.tmp",
            ".part-00000007-00000019.bin.tmp",
            "manifest.bin",
            "part-0000000x-00000019.bin",
        ] {
            assert_eq!(parse_part_file_name(bad), None, "{bad}");
        }
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // single-range slices are the fixtures here
    fn uncovered_is_the_complement() {
        assert_eq!(uncovered(10, &[]), vec![0..10]);
        assert_eq!(uncovered(10, &[0..10]), Vec::<Range<usize>>::new());
        assert_eq!(uncovered(10, &[0..3, 5..7]), vec![3..5, 7..10]);
        assert_eq!(uncovered(10, &[4..6]), vec![0..4, 6..10]);
    }

    #[test]
    fn unit_grid_aligns_to_global_multiples() {
        assert_eq!(unit_grid(0..10, 4), vec![0..4, 4..8, 8..10]);
        // A reassigned tail cuts at the same global boundaries …
        assert_eq!(unit_grid(5..10, 4), vec![5..8, 8..10]);
        // … so its parts dovetail with the crashed worker's.
        assert_eq!(unit_grid(3..4, 4), vec![3..4]);
        assert_eq!(unit_grid(4..4, 4), Vec::<Range<usize>>::new());
        assert_eq!(unit_grid(0..3, 0), vec![0..1, 1..2, 2..3]);
    }
}
