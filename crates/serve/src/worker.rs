//! The shard-worker side of an orchestrated sweep: solve an assigned
//! job range, checkpoint unit by unit, die loudly.
//!
//! [`run_worker`] is the whole life of one `dapc-serve worker` process.
//! It reads the sweep manifest of its directory (the coordinator wrote
//! it before spawning anyone), rebuilds the corpus from the embedded
//! spec, and walks its assigned range along the manifest's global
//! checkpoint grid — skipping units that already have a valid part file
//! (a resume or a predecessor's salvage), solving the rest, and
//! publishing each finished unit atomically. A crash at any instant
//! therefore forfeits at most one unit of work.

use crate::checkpoint::{self, SweepManifest};
use dapc_runtime::{snap, solve_range_streaming_with_cache, PrepCache, RuntimeConfig, ShardReport};
use std::fs;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Knobs of one worker process.
#[derive(Clone, Debug, Default)]
pub struct WorkerOptions {
    /// Intra-process job parallelism (`RuntimeConfig::jobs`).
    pub jobs: usize,
    /// Warm the prep cache from a [`ShardReport`] snapshot file before
    /// solving. A corrupt snapshot is a hard error — the all-or-nothing
    /// loader surfaces it to the caller instead of silently solving
    /// cold.
    pub warm: Option<PathBuf>,
    /// Fault injection: `process::abort()` after this many jobs have
    /// been solved (counted across units). Exercises the coordinator's
    /// salvage path in tests and CI.
    pub self_destruct_after: Option<usize>,
}

/// What one worker run did (for counters and tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Units solved and checkpointed by this run.
    pub solved_units: usize,
    /// Units skipped because a valid checkpoint already covered them.
    pub skipped_units: usize,
    /// Jobs solved by this run.
    pub solved_jobs: usize,
    /// Jobs covered by the skipped checkpoints.
    pub resumed_jobs: usize,
    /// Prep-cache entries absorbed from the warm-start snapshot.
    pub warmed_entries: usize,
}

/// Solves `range` of the sweep checkpointed in `dir`. See the module
/// docs for the life cycle.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] when `dir` has no (or a
/// corrupt) manifest, when `range` reaches beyond the manifest's corpus,
/// or when the warm-start snapshot fails to load; propagates filesystem
/// errors from checkpointing.
///
/// # Panics
///
/// A panicking solve propagates (the binary maps it to
/// [`crate::exit::EXIT_SOLVE_PANIC`]).
pub fn run_worker(
    dir: &Path,
    range: Range<usize>,
    opts: &WorkerOptions,
) -> io::Result<WorkerSummary> {
    let manifest = SweepManifest::load(dir)?
        .ok_or_else(|| snap::invalid(format!("{} has no sweep manifest", dir.display())))?;
    if range.end > manifest.corpus_jobs {
        return Err(snap::invalid(format!(
            "assigned range {range:?} reaches beyond the {}-job corpus",
            manifest.corpus_jobs
        )));
    }
    let corpus = manifest.spec.build();
    let cache = PrepCache::new();
    let mut summary = WorkerSummary::default();
    if let Some(warm) = &opts.warm {
        let report = ShardReport::load_from(io::BufReader::new(fs::File::open(warm)?))?;
        summary.warmed_entries = report.warm_start(&cache)?;
    }
    let rt = RuntimeConfig::new().jobs(opts.jobs.max(1));
    let solved = Arc::new(AtomicUsize::new(0));
    for unit in checkpoint::unit_grid(range, manifest.unit) {
        if unit_is_checkpointed(dir, &unit, manifest.corpus_jobs) {
            summary.skipped_units += 1;
            summary.resumed_jobs += unit.len();
            continue;
        }
        // Chaos: a straggling worker (exercises the supervisor timeout)
        // and signal death between units (already-published parts
        // survive and are salvaged — the crash forfeits nothing done).
        dapc_chaos::stall("worker.stall", 60);
        if dapc_chaos::roll("worker.abort").is_some() {
            std::process::abort();
        }
        let solved = Arc::clone(&solved);
        let fuse = opts.self_destruct_after;
        let part =
            solve_range_streaming_with_cache(&corpus, unit.clone(), &rt, &cache, move |_r| {
                // ordering: SeqCst — the chaos crash fuse must observe an exact solve count
                let count = solved.fetch_add(1, Ordering::SeqCst) + 1;
                if fuse.is_some_and(|k| count >= k) {
                    // The injected crash: no unwinding, no cleanup — the
                    // in-progress unit's part file is never written, exactly
                    // like a SIGKILL mid-solve.
                    std::process::abort();
                }
            });
        checkpoint::write_part(dir, &part)?;
        summary.solved_units += 1;
        summary.solved_jobs += unit.len();
    }
    Ok(summary)
}

/// Whether `unit` already has a loadable part file covering exactly it.
fn unit_is_checkpointed(dir: &Path, unit: &Range<usize>, corpus_jobs: usize) -> bool {
    let path = dir.join(checkpoint::part_file_name(unit));
    fs::File::open(path)
        .map(io::BufReader::new)
        .and_then(dapc_runtime::PartReport::load_from)
        .map(|p| p.corpus_jobs == corpus_jobs && p.covered() == vec![unit.clone()])
        .unwrap_or(false)
}
