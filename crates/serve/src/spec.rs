//! Declarative, serialisable sweep descriptions.
//!
//! A [`CorpusSpec`] is the unit of agreement between the three parties of
//! an orchestrated sweep: the CLI that states what to solve, the
//! checkpoint manifest that pins a directory to one sweep, and the
//! daemon that receives work over a socket. It names what a
//! [`dapc_runtime::Corpus`] holds by value — generated instances,
//! backends, the ε grid, seeds — in a form that can be parsed from
//! command-line tokens, shipped as versioned bytes, and rebuilt into the
//! identical corpus in any process.
//!
//! Unlike [`dapc_runtime::CorpusBuilder`], whose `build` asserts,
//! [`CorpusSpec::validate`] returns errors: specs arrive from sockets
//! and untrusted checkpoint directories, where malformed input must be
//! an `Err` for the caller, never a panic in the server.

use dapc_core::engine;
use dapc_graph::{gen, Graph};
use dapc_ilp::{problems, IlpInstance};
use dapc_runtime::{snap, Corpus};
use std::io;
use std::ops::Range;

/// Magic + version prefix of the spec's binary form (see
/// [`CorpusSpec::save_to`]).
pub const SPEC_MAGIC: &[u8; 8] = dapc_core::snapmagic::SPEC.bytes;

/// Caps applied by [`CorpusSpec::validate`] so a hostile spec cannot
/// talk a server into unbounded work: instances per corpus, vertices per
/// generated graph, backends, ε values, and seeds per sweep.
pub const SPEC_LIMITS: SpecLimits = SpecLimits {
    instances: 64,
    vertices: 4096,
    backends: 16,
    eps: 16,
    seeds: 4096,
};

/// The caps of [`SPEC_LIMITS`], named.
#[derive(Clone, Copy, Debug)]
pub struct SpecLimits {
    /// Maximum instances per corpus.
    pub instances: usize,
    /// Maximum vertices per generated graph.
    pub vertices: usize,
    /// Maximum backends per corpus.
    pub backends: usize,
    /// Maximum ε values per corpus.
    pub eps: usize,
    /// Maximum seeds per corpus.
    pub seeds: usize,
}

/// The covering/packing problem an instance poses on its graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Problem {
    /// Maximum independent set (packing).
    Mis,
    /// Minimum vertex cover (covering).
    Vc,
    /// Minimum dominating set (covering).
    Ds,
}

impl Problem {
    fn token(self) -> &'static str {
        match self {
            Problem::Mis => "mis",
            Problem::Vc => "vc",
            Problem::Ds => "ds",
        }
    }

    fn from_token(t: &str) -> Option<Self> {
        match t {
            "mis" => Some(Problem::Mis),
            "vc" => Some(Problem::Vc),
            "ds" => Some(Problem::Ds),
            _ => None,
        }
    }

    fn pose(self, g: &Graph) -> IlpInstance {
        match self {
            Problem::Mis => problems::max_independent_set_unweighted(g),
            Problem::Vc => problems::min_vertex_cover_unweighted(g),
            Problem::Ds => problems::min_dominating_set_unweighted(g),
        }
    }
}

impl std::fmt::Display for Problem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

impl std::fmt::Display for InstanceSpec {
    /// The parseable token form: `name=problem:graph`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}:{}", self.name, self.problem, self.graph)
    }
}

/// A generated graph, named by family and parameters. Generation is
/// deterministic (G(n,p) takes its RNG seed from the spec), so every
/// process rebuilding the spec solves bit-identical instances.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSpec {
    /// Path on `n` vertices.
    Path(usize),
    /// Cycle on `n` vertices.
    Cycle(usize),
    /// Complete graph on `n` vertices.
    Complete(usize),
    /// Star with `n - 1` leaves.
    Star(usize),
    /// Grid of `rows × cols` vertices.
    Grid(usize, usize),
    /// Erdős–Rényi G(n, p) drawn from the seeded generator RNG.
    Gnp {
        /// Vertices.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Generator RNG seed.
        seed: u64,
    },
}

impl GraphSpec {
    fn vertices(&self) -> usize {
        match *self {
            GraphSpec::Path(n)
            | GraphSpec::Cycle(n)
            | GraphSpec::Complete(n)
            | GraphSpec::Star(n)
            | GraphSpec::Gnp { n, .. } => n,
            GraphSpec::Grid(r, c) => r.saturating_mul(c),
        }
    }

    fn generate(&self) -> Graph {
        match *self {
            GraphSpec::Path(n) => gen::path(n),
            GraphSpec::Cycle(n) => gen::cycle(n),
            GraphSpec::Complete(n) => gen::complete(n),
            GraphSpec::Star(n) => gen::star(n),
            GraphSpec::Grid(r, c) => gen::grid(r, c),
            GraphSpec::Gnp { n, p, seed } => gen::gnp(n, p, &mut gen::seeded_rng(seed)),
        }
    }
}

impl std::fmt::Display for GraphSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            GraphSpec::Path(n) => write!(f, "path:{n}"),
            GraphSpec::Cycle(n) => write!(f, "cycle:{n}"),
            GraphSpec::Complete(n) => write!(f, "complete:{n}"),
            GraphSpec::Star(n) => write!(f, "star:{n}"),
            GraphSpec::Grid(r, c) => write!(f, "grid:{r}x{c}"),
            GraphSpec::Gnp { n, p, seed } => write!(f, "gnp:{n}:{p}:{seed}"),
        }
    }
}

/// One named instance of the sweep: a problem posed on a generated
/// graph.
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceSpec {
    /// Corpus-unique instance name.
    pub name: String,
    /// Which ILP to pose.
    pub problem: Problem,
    /// Which graph to pose it on.
    pub graph: GraphSpec,
}

/// A complete sweep description; build the runnable corpus with
/// [`CorpusSpec::build`].
///
/// # Examples
///
/// ```
/// use dapc_serve::CorpusSpec;
///
/// let spec = CorpusSpec::parse_args([
///     "ring=mis:cycle:12",
///     "cover=vc:grid:3x4",
///     "@backends=greedy,bnb",
///     "@eps=0.3",
///     "@seeds=0..2",
/// ])
/// .unwrap();
/// assert_eq!(spec.build().len(), 2 * 2 * 1 * 2);
///
/// // The binary form round-trips and is canonical.
/// let mut bytes = Vec::new();
/// spec.save_to(&mut bytes).unwrap();
/// assert_eq!(CorpusSpec::load_from(bytes.as_slice()).unwrap(), spec);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusSpec {
    /// The named instances, in canonical (insertion) order.
    pub instances: Vec<InstanceSpec>,
    /// Engine registry keys of the backends to run.
    pub backends: Vec<String>,
    /// The ε grid.
    pub eps_grid: Vec<f64>,
    /// The seed range.
    pub seeds: Range<u64>,
    /// Ensemble runs per job (`0` = the engine default).
    pub ensemble_runs: usize,
}

impl CorpusSpec {
    /// Parses command-line tokens: each positional token is an instance
    /// `name=problem:graph` (problems `mis`/`vc`/`ds`; graphs `path:N`,
    /// `cycle:N`, `complete:N`, `star:N`, `grid:RxC`, `gnp:N:P:SEED`),
    /// and `@`-tokens set the grid — `@backends=a,b`, `@eps=0.2,0.3`,
    /// `@seeds=A..B`, `@ensemble=N`. The parsed spec is validated.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on any malformed token
    /// or a spec rejected by [`CorpusSpec::validate`].
    pub fn parse_args<I, S>(tokens: I) -> io::Result<Self>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut spec = CorpusSpec {
            instances: Vec::new(),
            backends: Vec::new(),
            eps_grid: Vec::new(),
            seeds: 0..1,
            ensemble_runs: 0,
        };
        for token in tokens {
            let token = token.as_ref();
            if let Some(rest) = token.strip_prefix('@') {
                let (key, value) = rest
                    .split_once('=')
                    .ok_or_else(|| snap::invalid(format!("expected @key=value, got {token:?}")))?;
                match key {
                    "backends" => {
                        spec.backends = value.split(',').map(str::to_string).collect();
                    }
                    "eps" => {
                        spec.eps_grid = value
                            .split(',')
                            .map(|e| {
                                e.parse::<f64>()
                                    .map_err(|_| snap::invalid(format!("bad eps value {e:?}")))
                            })
                            .collect::<io::Result<_>>()?;
                    }
                    "seeds" => {
                        let (a, b) = value.split_once("..").ok_or_else(|| {
                            snap::invalid(format!("expected @seeds=A..B, got {value:?}"))
                        })?;
                        let parse = |s: &str| {
                            s.parse::<u64>()
                                .map_err(|_| snap::invalid(format!("bad seed bound {s:?}")))
                        };
                        spec.seeds = parse(a)?..parse(b)?;
                    }
                    "ensemble" => {
                        spec.ensemble_runs = value
                            .parse::<usize>()
                            .map_err(|_| snap::invalid(format!("bad ensemble count {value:?}")))?;
                    }
                    _ => return Err(snap::invalid(format!("unknown spec key @{key}"))),
                }
            } else {
                spec.instances.push(parse_instance(token)?);
            }
        }
        if spec.backends.is_empty() {
            spec.backends = engine::BACKENDS.iter().map(|s| s.to_string()).collect();
        }
        if spec.eps_grid.is_empty() {
            spec.eps_grid.push(0.3);
        }
        spec.validate()?;
        Ok(spec)
    }

    /// Checks everything [`CorpusSpec::build`] would otherwise panic on,
    /// plus the [`SPEC_LIMITS`] resource caps, as errors — the contract
    /// that makes specs safe to accept from sockets and on-disk
    /// manifests.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] naming the offending
    /// field: empty or duplicate instances/backends/ε values, unknown
    /// backend keys, ε outside `(0, 1)`, an empty seed range, zero-vertex
    /// graphs, or any cap exceeded.
    pub fn validate(&self) -> io::Result<()> {
        let l = SPEC_LIMITS;
        if self.instances.is_empty() {
            return Err(snap::invalid("spec has no instances"));
        }
        if self.instances.len() > l.instances {
            return Err(snap::invalid(format!(
                "{} instances exceed the cap of {}",
                self.instances.len(),
                l.instances
            )));
        }
        for (i, inst) in self.instances.iter().enumerate() {
            if inst.name.is_empty() || inst.name.len() > 128 {
                return Err(snap::invalid(format!(
                    "instance name {:?} is empty or too long",
                    inst.name
                )));
            }
            if self.instances[..i].iter().any(|p| p.name == inst.name) {
                return Err(snap::invalid(format!(
                    "duplicate instance name {:?}",
                    inst.name
                )));
            }
            let n = inst.graph.vertices();
            if n == 0 {
                return Err(snap::invalid(format!(
                    "instance {:?} has no vertices",
                    inst.name
                )));
            }
            if n > l.vertices {
                return Err(snap::invalid(format!(
                    "instance {:?} has {n} vertices, cap is {}",
                    inst.name, l.vertices
                )));
            }
            if let GraphSpec::Gnp { p, .. } = inst.graph {
                if !(0.0..=1.0).contains(&p) {
                    return Err(snap::invalid(format!(
                        "instance {:?} has edge probability {p} outside [0, 1]",
                        inst.name
                    )));
                }
            }
        }
        if self.backends.is_empty() || self.backends.len() > l.backends {
            return Err(snap::invalid(format!(
                "{} backends (need 1..={})",
                self.backends.len(),
                l.backends
            )));
        }
        for (i, b) in self.backends.iter().enumerate() {
            if engine::backend(b).is_none() {
                return Err(snap::invalid(format!("unknown backend {b:?}")));
            }
            if self.backends[..i].contains(b) {
                return Err(snap::invalid(format!("duplicate backend {b:?}")));
            }
        }
        if self.eps_grid.is_empty() || self.eps_grid.len() > l.eps {
            return Err(snap::invalid(format!(
                "{} eps values (need 1..={})",
                self.eps_grid.len(),
                l.eps
            )));
        }
        for (i, &e) in self.eps_grid.iter().enumerate() {
            if !(e > 0.0 && e < 1.0) {
                return Err(snap::invalid(format!("eps {e} outside (0, 1)")));
            }
            if self.eps_grid[..i]
                .iter()
                .any(|p| p.to_bits() == e.to_bits())
            {
                return Err(snap::invalid(format!("duplicate eps {e}")));
            }
        }
        if self.seeds.is_empty() {
            return Err(snap::invalid("empty seed range"));
        }
        let span = self.seeds.end - self.seeds.start;
        if span > l.seeds as u64 {
            return Err(snap::invalid(format!(
                "{span} seeds exceed the cap of {}",
                l.seeds
            )));
        }
        if self.ensemble_runs > 64 {
            return Err(snap::invalid(format!(
                "{} ensemble runs exceed the cap of 64",
                self.ensemble_runs
            )));
        }
        Ok(())
    }

    /// Generates every instance and freezes the runnable corpus. Call
    /// [`CorpusSpec::validate`] first on untrusted specs — `build`
    /// delegates to [`Corpus::builder`], which panics on invalid input
    /// (every such input is caught by `validate`).
    pub fn build(&self) -> Corpus {
        let mut b = Corpus::builder()
            .backends(self.backends.iter().cloned())
            .eps_grid(self.eps_grid.iter().copied())
            .seeds(self.seeds.clone());
        if self.ensemble_runs > 0 {
            b = b.base_config(
                dapc_core::engine::SolveConfig::new().ensemble_runs(self.ensemble_runs),
            );
        }
        for inst in &self.instances {
            b = b.instance(&inst.name, inst.problem.pose(&inst.graph.generate()));
        }
        b.build()
    }

    /// Writes the spec's canonical binary form (magic [`SPEC_MAGIC`],
    /// then instances, backends, ε bits, seeds and ensemble count, all
    /// length-prefixed little-endian).
    ///
    /// # Errors
    ///
    /// Propagates writer errors.
    pub fn save_to<W: io::Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(SPEC_MAGIC)?;
        snap::write_u64(&mut w, self.instances.len() as u64)?;
        for inst in &self.instances {
            snap::write_str(&mut w, &inst.name)?;
            let problem = match inst.problem {
                Problem::Mis => 0u8,
                Problem::Vc => 1,
                Problem::Ds => 2,
            };
            w.write_all(&[problem])?;
            match inst.graph {
                GraphSpec::Path(n) => {
                    w.write_all(&[0])?;
                    snap::write_u64(&mut w, n as u64)?;
                }
                GraphSpec::Cycle(n) => {
                    w.write_all(&[1])?;
                    snap::write_u64(&mut w, n as u64)?;
                }
                GraphSpec::Complete(n) => {
                    w.write_all(&[2])?;
                    snap::write_u64(&mut w, n as u64)?;
                }
                GraphSpec::Star(n) => {
                    w.write_all(&[3])?;
                    snap::write_u64(&mut w, n as u64)?;
                }
                GraphSpec::Grid(r, c) => {
                    w.write_all(&[4])?;
                    snap::write_u64(&mut w, r as u64)?;
                    snap::write_u64(&mut w, c as u64)?;
                }
                GraphSpec::Gnp { n, p, seed } => {
                    w.write_all(&[5])?;
                    snap::write_u64(&mut w, n as u64)?;
                    snap::write_u64(&mut w, p.to_bits())?;
                    snap::write_u64(&mut w, seed)?;
                }
            }
        }
        snap::write_u64(&mut w, self.backends.len() as u64)?;
        for b in &self.backends {
            snap::write_str(&mut w, b)?;
        }
        snap::write_u64(&mut w, self.eps_grid.len() as u64)?;
        for &e in &self.eps_grid {
            snap::write_u64(&mut w, e.to_bits())?;
        }
        snap::write_u64(&mut w, self.seeds.start)?;
        snap::write_u64(&mut w, self.seeds.end)?;
        snap::write_u64(&mut w, self.ensemble_runs as u64)?;
        Ok(())
    }

    /// Reads a spec written by [`CorpusSpec::save_to`] and validates it.
    /// All-or-nothing: no count field drives an allocation beyond the
    /// [`SPEC_LIMITS`] caps, truncation at any byte is an `Err`, and the
    /// loaded spec passes [`CorpusSpec::validate`] before being returned.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] on a bad magic or
    /// version, an out-of-range tag or count, or a spec `validate`
    /// rejects; with [`io::ErrorKind::UnexpectedEof`] on truncation.
    pub fn load_from<R: io::Read>(mut r: R) -> io::Result<Self> {
        snap::check_magic(&mut r, SPEC_MAGIC, "corpus-spec")?;
        let l = SPEC_LIMITS;
        let instances = read_count(&mut r, l.instances, "instances")?;
        let instances = (0..instances)
            .map(|_| {
                let name = snap::read_str(&mut r, "instance name")?;
                let problem = match snap::read_u8(&mut r)? {
                    0 => Problem::Mis,
                    1 => Problem::Vc,
                    2 => Problem::Ds,
                    t => return Err(snap::invalid(format!("unknown problem tag {t}"))),
                };
                let graph = match snap::read_u8(&mut r)? {
                    0 => GraphSpec::Path(snap::read_u64(&mut r)? as usize),
                    1 => GraphSpec::Cycle(snap::read_u64(&mut r)? as usize),
                    2 => GraphSpec::Complete(snap::read_u64(&mut r)? as usize),
                    3 => GraphSpec::Star(snap::read_u64(&mut r)? as usize),
                    4 => GraphSpec::Grid(
                        snap::read_u64(&mut r)? as usize,
                        snap::read_u64(&mut r)? as usize,
                    ),
                    5 => GraphSpec::Gnp {
                        n: snap::read_u64(&mut r)? as usize,
                        p: f64::from_bits(snap::read_u64(&mut r)?),
                        seed: snap::read_u64(&mut r)?,
                    },
                    t => return Err(snap::invalid(format!("unknown graph tag {t}"))),
                };
                Ok(InstanceSpec {
                    name,
                    problem,
                    graph,
                })
            })
            .collect::<io::Result<Vec<_>>>()?;
        let backends = read_count(&mut r, l.backends, "backends")?;
        let backends = (0..backends)
            .map(|_| snap::read_str(&mut r, "backend name"))
            .collect::<io::Result<Vec<_>>>()?;
        let eps = read_count(&mut r, l.eps, "eps values")?;
        let eps_grid = (0..eps)
            .map(|_| Ok(f64::from_bits(snap::read_u64(&mut r)?)))
            .collect::<io::Result<Vec<_>>>()?;
        let seeds = snap::read_u64(&mut r)?..snap::read_u64(&mut r)?;
        let ensemble_runs = snap::read_u64(&mut r)? as usize;
        let spec = CorpusSpec {
            instances,
            backends,
            eps_grid,
            seeds,
            ensemble_runs,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Jobs in the corpus this spec describes (`instances × backends ×
    /// ε values × seeds`) — without generating any graph, so manifests
    /// can be cross-checked cheaply.
    pub fn grid_len(&self) -> usize {
        self.instances.len()
            * self.backends.len()
            * self.eps_grid.len()
            * (self.seeds.end - self.seeds.start) as usize
    }

    /// The spec's canonical bytes (a `Vec`-backed [`CorpusSpec::save_to`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        self.save_to(&mut bytes)
            // dapc-allow(panic): writing to a Vec cannot fail
            .expect("writing a spec to a Vec cannot fail");
        bytes
    }
}

/// Reads a count field and refuses anything beyond `cap` *before* any
/// element is parsed — count fields never drive allocations.
fn read_count<R: io::Read>(r: &mut R, cap: usize, what: &str) -> io::Result<usize> {
    let n = snap::read_u64(r)?;
    if n > cap as u64 {
        return Err(snap::invalid(format!("{n} {what} exceed the cap of {cap}")));
    }
    Ok(n as usize)
}

fn parse_instance(token: &str) -> io::Result<InstanceSpec> {
    let (name, rest) = token
        .split_once('=')
        .ok_or_else(|| snap::invalid(format!("expected name=problem:graph, got {token:?}")))?;
    let mut parts = rest.split(':');
    let problem = parts
        .next()
        .and_then(Problem::from_token)
        .ok_or_else(|| snap::invalid(format!("unknown problem in {token:?} (mis/vc/ds)")))?;
    let family = parts
        .next()
        .ok_or_else(|| snap::invalid(format!("missing graph family in {token:?}")))?;
    let mut num = |what: &str| -> io::Result<usize> {
        parts
            .next()
            .and_then(|s| s.parse::<usize>().ok())
            .ok_or_else(|| snap::invalid(format!("bad or missing {what} in {token:?}")))
    };
    let graph = match family {
        "path" => GraphSpec::Path(num("size")?),
        "cycle" => GraphSpec::Cycle(num("size")?),
        "complete" => GraphSpec::Complete(num("size")?),
        "star" => GraphSpec::Star(num("size")?),
        "grid" => {
            let dims = parts
                .next()
                .ok_or_else(|| snap::invalid(format!("missing RxC dims in {token:?}")))?;
            let (r, c) = dims
                .split_once('x')
                .and_then(|(r, c)| Some((r.parse::<usize>().ok()?, c.parse::<usize>().ok()?)))
                .ok_or_else(|| snap::invalid(format!("bad grid dims in {token:?}")))?;
            GraphSpec::Grid(r, c)
        }
        "gnp" => {
            let n = num("size")?;
            let p = parts
                .next()
                .and_then(|s| s.parse::<f64>().ok())
                .ok_or_else(|| snap::invalid(format!("bad edge probability in {token:?}")))?;
            let seed = parts
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| snap::invalid(format!("bad generator seed in {token:?}")))?;
            GraphSpec::Gnp { n, p, seed }
        }
        other => {
            return Err(snap::invalid(format!(
                "unknown graph family {other:?} in {token:?}"
            )))
        }
    };
    if parts.next().is_some() {
        return Err(snap::invalid(format!("trailing fields in {token:?}")));
    }
    Ok(InstanceSpec {
        name: name.to_string(),
        problem,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> CorpusSpec {
        CorpusSpec::parse_args([
            "ring=mis:cycle:12",
            "cover=vc:grid:3x4",
            "dom=ds:gnp:10:0.3:7",
            "@backends=greedy,bnb",
            "@eps=0.2,0.3",
            "@seeds=0..3",
            "@ensemble=2",
        ])
        .expect("demo spec parses")
    }

    #[test]
    fn parses_and_builds_the_full_grid() {
        let spec = demo();
        let corpus = spec.build();
        assert_eq!(corpus.len(), 3 * 2 * 2 * 3);
        assert_eq!(corpus.instance_names(), vec!["ring", "cover", "dom"]);
    }

    #[test]
    fn defaults_fill_backends_and_eps() {
        let spec = CorpusSpec::parse_args(["a=mis:cycle:6"]).unwrap();
        assert_eq!(spec.backends.len(), engine::BACKENDS.len());
        assert_eq!(spec.eps_grid, vec![0.3]);
        assert_eq!(spec.seeds, 0..1);
    }

    #[test]
    fn rejects_malformed_tokens() {
        for bad in [
            "noequals",
            "a=unknown:cycle:6",
            "a=mis:blob:6",
            "a=mis:cycle:notanum",
            "a=mis:grid:3y4",
            "a=mis:cycle:6:extra",
            "@seeds=5",
            "@seeds=a..b",
            "@eps=nope",
            "@mystery=1",
        ] {
            let err = CorpusSpec::parse_args(["ok=mis:cycle:6", bad])
                .expect_err(&format!("{bad:?} must be rejected"));
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{bad:?}: {err}");
        }
    }

    #[test]
    fn validate_rejects_what_build_would_panic_on() {
        for (tweak, needle) in [
            (
                Box::new(|s: &mut CorpusSpec| s.instances.clear()) as Box<dyn Fn(&mut CorpusSpec)>,
                "no instances",
            ),
            (
                Box::new(|s: &mut CorpusSpec| {
                    let dup = s.instances[0].clone();
                    s.instances.push(dup);
                }),
                "duplicate instance",
            ),
            (
                Box::new(|s: &mut CorpusSpec| s.backends.push("greedy".into())),
                "duplicate backend",
            ),
            (
                Box::new(|s: &mut CorpusSpec| s.backends.push("no-such".into())),
                "unknown backend",
            ),
            (
                Box::new(|s: &mut CorpusSpec| s.eps_grid.push(0.2)),
                "duplicate eps",
            ),
            (
                Box::new(|s: &mut CorpusSpec| s.eps_grid.push(1.5)),
                "outside (0, 1)",
            ),
            (
                Box::new(|s: &mut CorpusSpec| s.seeds = 3..3),
                "empty seed range",
            ),
            (
                Box::new(|s: &mut CorpusSpec| s.seeds = 0..u64::MAX),
                "exceed the cap",
            ),
            (
                Box::new(|s: &mut CorpusSpec| s.instances[0].graph = GraphSpec::Cycle(1 << 20)),
                "cap is",
            ),
            (
                Box::new(|s: &mut CorpusSpec| s.ensemble_runs = 1000),
                "ensemble runs",
            ),
        ] {
            let mut spec = demo();
            tweak(&mut spec);
            let err = spec.validate().expect_err(needle);
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn binary_form_round_trips_and_is_canonical() {
        let spec = demo();
        let bytes = spec.to_bytes();
        let loaded = CorpusSpec::load_from(bytes.as_slice()).expect("round trip");
        assert_eq!(loaded, spec);
        assert_eq!(loaded.to_bytes(), bytes, "spec bytes are not canonical");
    }

    #[test]
    fn truncated_spec_bytes_error_at_every_cut() {
        let bytes = demo().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                CorpusSpec::load_from(&bytes[..cut]).is_err(),
                "spec prefix of {cut} bytes must not load"
            );
        }
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        let mut bytes = demo().to_bytes();
        // Instance count is the first u64 after the magic.
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = CorpusSpec::load_from(bytes.as_slice()).expect_err("must reject");
        assert!(err.to_string().contains("exceed the cap"), "{err}");
    }

    #[test]
    fn loaded_specs_are_validated() {
        let mut spec = demo();
        spec.backends = vec!["no-such".into()];
        let mut bytes = Vec::new();
        spec.save_to(&mut bytes).unwrap();
        let err = CorpusSpec::load_from(bytes.as_slice()).expect_err("must reject");
        assert!(err.to_string().contains("unknown backend"), "{err}");
    }

    #[test]
    fn spec_corpus_matches_hand_built_corpus() {
        use dapc_core::engine::SolveConfig;
        let spec = CorpusSpec::parse_args([
            "ring=mis:cycle:12",
            "@backends=greedy",
            "@eps=0.3",
            "@seeds=0..2",
            "@ensemble=2",
        ])
        .unwrap();
        let by_hand = Corpus::builder()
            .instance(
                "ring",
                problems::max_independent_set_unweighted(&gen::cycle(12)),
            )
            .backend("greedy")
            .eps(0.3)
            .seeds(0..2)
            .base_config(SolveConfig::new().ensemble_runs(2))
            .build();
        let a = dapc_runtime::solve_many(&spec.build(), &dapc_runtime::RuntimeConfig::new());
        let b = dapc_runtime::solve_many(&by_hand, &dapc_runtime::RuntimeConfig::new());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.key, y.key);
            assert_eq!(x.report.value, y.report.value);
        }
    }
}
