//! # dapc-serve
//!
//! Sweep orchestration and the persistent solve service on top of
//! `dapc-runtime`'s mergeable partial results — the layer that takes the
//! batch runtime from "a library call" to "a production sweep that
//! survives crashed workers and a server you can keep warm".
//!
//! Three layers, composable and separately testable:
//!
//! 1. **Specs** ([`CorpusSpec`]): declarative sweep descriptions that
//!    parse from CLI tokens, serialise to hardened versioned bytes, and
//!    rebuild bit-identical corpora in any process — the unit of
//!    agreement between coordinator, workers, checkpoint directories and
//!    daemon clients.
//! 2. **Fault-tolerant orchestration** ([`orchestrate_sweep`] over
//!    [`Supervisor`]): a coordinator partitions the corpus across worker
//!    processes, workers checkpoint unit-aligned [`dapc_runtime::PartReport`]
//!    files atomically, and every worker death — crash, kill, straggler
//!    timeout — forfeits only the unfinished remainder of its range,
//!    which is requeued to the next free slot. Because job results are
//!    pure functions of their [`dapc_runtime::JobKey`], the merged sweep
//!    is byte-identical to the single-process run no matter how many
//!    workers died; a restarted sweep resumes from the checkpoints
//!    without recomputing a single finished unit.
//! 3. **The daemon** ([`Daemon`]): a Unix-socket server speaking a
//!    length-prefixed binary protocol ([`proto`]) that keeps one
//!    [`dapc_runtime::PrepCache`] resident across requests, serves
//!    connections from a bounded thread pool behind a bounded queue
//!    (shedding load with in-band `Busy` frames), bounds client waits
//!    with per-request deadlines, and streams per-job results as they
//!    complete. The [`client`] module pairs it with a capped-backoff
//!    [`client::RetryPolicy`] — safe to retry because every result is a
//!    pure function of its job key.
//!
//! The whole stack is exercised under deterministic fault injection
//! (`dapc-chaos`): with a seeded fault plan armed, checkpoint writes
//! tear, loads flip bits, workers stall and abort, and frames truncate
//! mid-write — and a sweep either fails loudly with the right exit code
//! or completes byte-identical to the fault-free single-process run.
//!
//! Everything that crosses a process boundary — specs, manifests, part
//! files, wire frames — obeys the same hardening contract as the
//! runtime's snapshots: all-or-nothing loads, truncation at any byte is
//! an `Err`, and no length field ever drives an allocation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod coordinator;
mod daemon;
pub mod exit;
pub mod proto;
mod spec;
mod worker;

pub use checkpoint::{
    gc_stale_tmp, part_file_name, scan_parts, uncovered, unit_grid, write_part, Scan,
    SweepManifest, MANIFEST_FILE, MANIFEST_MAGIC, QUARANTINE_DIR,
};
pub use coordinator::{
    orchestrate_sweep, Exit, SuperviseStats, Supervisor, SweepConfig, SweepOutcome, Verdict,
};
pub use daemon::{client, Daemon, DaemonConfig, MAX_REQUEST_JOBS};
pub use spec::{CorpusSpec, GraphSpec, InstanceSpec, Problem, SpecLimits, SPEC_LIMITS, SPEC_MAGIC};
pub use worker::{run_worker, WorkerOptions, WorkerSummary};
