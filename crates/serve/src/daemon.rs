//! The persistent solve daemon and its client.
//!
//! A [`Daemon`] listens on a Unix-domain socket and serves
//! [`Request`]s framed by [`crate::proto`]. The point of keeping the
//! process alive between requests is the resident [`PrepCache`]: corpora
//! that revisit the same instance families (the common case in sweep
//! workflows) skip their memoised exact subset solves on every request
//! after the first, which is visible in the [`Response::Stats`] hit
//! counters.
//!
//! The daemon trusts nothing it reads: frames and specs go through the
//! hardened decoders, a bad message earns a [`Response::Error`] (or a
//! dropped connection if even the frame layer is broken) and the server
//! keeps serving. Requests are handled one connection at a time — the
//! parallelism that matters runs *inside* a request via the runtime's
//! executor, and a single-threaded accept loop keeps the resident cache
//! free of cross-request races.

use crate::proto::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use crate::spec::CorpusSpec;
use dapc_local::RoundCost;
use dapc_runtime::{solve_range_streaming_with_cache, JobResult, PrepCache, RuntimeConfig};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Hard cap on the per-request `jobs` parallelism a client may ask for.
pub const MAX_REQUEST_JOBS: u64 = 16;

/// Daemon-layer metric handles (`serve.daemon.*`), resolved once.
mod metrics {
    use dapc_obs::{counter, histogram, Counter, Histogram};
    use std::sync::OnceLock;

    /// Requests accepted (well-formed or not), across connections.
    pub fn requests() -> &'static Counter {
        static H: OnceLock<Counter> = OnceLock::new();
        H.get_or_init(|| counter("serve.daemon.requests"))
    }

    /// End-to-end service latency of one request, by request kind.
    pub fn latency(kind: &Kind) -> &'static Histogram {
        static PING: OnceLock<Histogram> = OnceLock::new();
        static STATS: OnceLock<Histogram> = OnceLock::new();
        static SOLVE: OnceLock<Histogram> = OnceLock::new();
        static SWEEP: OnceLock<Histogram> = OnceLock::new();
        match kind {
            Kind::Ping => PING.get_or_init(|| histogram("serve.daemon.ping_micros")),
            Kind::Stats => STATS.get_or_init(|| histogram("serve.daemon.stats_micros")),
            Kind::Solve => SOLVE.get_or_init(|| histogram("serve.daemon.solve_micros")),
            Kind::Sweep => SWEEP.get_or_init(|| histogram("serve.daemon.sweep_micros")),
        }
    }

    /// The request kinds that get their own latency histogram.
    pub enum Kind {
        /// `Request::Ping`.
        Ping,
        /// `Request::Stats`.
        Stats,
        /// `Request::Solve`.
        Solve,
        /// `Request::Sweep`.
        Sweep,
    }
}

/// The persistent solve server. See the module docs.
pub struct Daemon {
    listener: UnixListener,
    socket: PathBuf,
    cache: PrepCache,
    requests: u64,
    jobs_solved: u64,
}

impl Daemon {
    /// Binds the daemon to `socket`, replacing a stale socket file from
    /// a dead predecessor.
    ///
    /// # Errors
    ///
    /// Propagates bind errors (including a *live* predecessor still
    /// holding the address on platforms that report it).
    pub fn bind(socket: &Path) -> io::Result<Self> {
        match std::fs::remove_file(socket) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
        Ok(Daemon {
            listener: UnixListener::bind(socket)?,
            socket: socket.to_path_buf(),
            cache: PrepCache::new(),
            requests: 0,
            jobs_solved: 0,
        })
    }

    /// The socket path this daemon serves on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Serves connections until a [`Request::Shutdown`] arrives, then
    /// removes the socket file and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept errors. Per-connection I/O and decode errors
    /// are contained: the offending connection is dropped and the next
    /// one served.
    pub fn run(mut self) -> io::Result<()> {
        loop {
            let (stream, _addr) = self.listener.accept()?;
            match self.serve_connection(stream) {
                Ok(true) => break,
                Ok(false) => {}
                Err(_torn_connection) => {} // that client's problem, not the daemon's
            }
        }
        std::fs::remove_file(&self.socket).ok();
        Ok(())
    }

    /// Serves one connection until the peer closes; `Ok(true)` means a
    /// shutdown was requested.
    fn serve_connection(&mut self, mut stream: UnixStream) -> io::Result<bool> {
        while let Some(body) = read_frame(&mut stream)? {
            self.requests += 1;
            if dapc_obs::enabled() {
                metrics::requests().inc();
            }
            let request = match Request::from_bytes(&body) {
                Ok(r) => r,
                Err(e) => {
                    // The frame layer is intact, so the error is
                    // answerable in-band and the connection survives.
                    let resp = Response::Error {
                        message: format!("bad request: {e}"),
                    };
                    write_frame(&mut stream, &resp.to_bytes())?;
                    continue;
                }
            };
            // Latency covers the whole service of the request, including
            // writing the reply frames. Shutdown is excluded: its timer
            // would never be read.
            let started = dapc_obs::enabled().then(Instant::now);
            let kind = match request {
                Request::Ping => {
                    let resp = Response::Pong {
                        protocol: PROTOCOL_VERSION,
                    };
                    write_frame(&mut stream, &resp.to_bytes())?;
                    metrics::Kind::Ping
                }
                Request::Stats => {
                    let c = self.cache.stats();
                    let resp = Response::Stats {
                        requests: self.requests,
                        jobs_solved: self.jobs_solved,
                        cache_families: c.families as u64,
                        cache_entries: c.entries as u64,
                        cache_hits: c.hits,
                        cache_misses: c.misses,
                        metrics: dapc_obs::MetricsSnapshot::capture(),
                    };
                    write_frame(&mut stream, &resp.to_bytes())?;
                    metrics::Kind::Stats
                }
                Request::Shutdown => {
                    write_frame(&mut stream, &Response::ShutdownAck.to_bytes())?;
                    return Ok(true);
                }
                Request::Solve { spec, index } => {
                    let len = spec.grid_len() as u64;
                    if index >= len {
                        let resp = Response::Error {
                            message: format!("job index {index} out of range for {len} jobs"),
                        };
                        write_frame(&mut stream, &resp.to_bytes())?;
                    } else {
                        let range = index as usize..index as usize + 1;
                        self.stream_solve(&mut stream, &spec, range, 1)?;
                    }
                    metrics::Kind::Solve
                }
                Request::Sweep { spec, jobs } => {
                    let jobs = jobs.clamp(1, MAX_REQUEST_JOBS) as usize;
                    let range = 0..spec.grid_len();
                    self.stream_solve(&mut stream, &spec, range, jobs)?;
                    metrics::Kind::Sweep
                }
            };
            if let Some(started) = started {
                metrics::latency(&kind).observe_micros(started.elapsed());
            }
        }
        Ok(false)
    }

    /// Solves `range` of `spec`'s corpus against the resident cache,
    /// streaming one [`Response::Job`] per result and a closing
    /// [`Response::Summary`].
    fn stream_solve(
        &mut self,
        stream: &mut UnixStream,
        spec: &CorpusSpec,
        range: std::ops::Range<usize>,
        jobs: usize,
    ) -> io::Result<()> {
        let corpus = spec.build(); // specs from the wire are pre-validated
        let rt = RuntimeConfig::new().jobs(jobs);
        // The hook runs on solver threads; the sink shares the socket
        // with this frame writer and remembers the first write failure
        // (solving finishes regardless — results also land in the part).
        let sink = Arc::new(Mutex::new(stream.try_clone()?));
        let failed = Arc::new(Mutex::new(None::<io::Error>));
        let next_index = Arc::new(AtomicU64::new(range.start as u64));
        let hook_sink = Arc::clone(&sink);
        let hook_failed = Arc::clone(&failed);
        let part = solve_range_streaming_with_cache(
            &corpus,
            range,
            &rt,
            &self.cache,
            move |r: JobResult| {
                // Results arrive in canonical order, so a counter
                // recovers each job's global index.
                let index = next_index.fetch_add(1, Ordering::SeqCst);
                let frame = Response::Job {
                    index,
                    key: r.key.to_string(),
                    value: r.report.value,
                    feasible: r.report.feasible(),
                    rounds: r.report.rounds() as u64,
                    micros: r.micros,
                }
                .to_bytes();
                let mut failed = hook_failed.lock().expect("daemon sink failure flag");
                if failed.is_none() {
                    let mut sink = hook_sink.lock().expect("daemon sink");
                    if let Err(e) = write_frame(&mut *sink, &frame) {
                        *failed = Some(e);
                    }
                }
            },
        );
        self.jobs_solved += part.jobs as u64;
        if let Some(e) = failed.lock().expect("daemon sink failure flag").take() {
            return Err(e);
        }
        // A request range is one contiguous span, so the aggregator can
        // finalise it without full-corpus coverage (no interior gap).
        let jobs = part.jobs as u64;
        let wall = part.wall;
        let (groups, backends) = part.aggregator.finish();
        let cache = self.cache.stats();
        let resp = Response::Summary {
            jobs,
            groups: groups.len() as u64,
            backends: backends.len() as u64,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            wall_micros: wall.as_micros() as u64,
        };
        write_frame(stream, &resp.to_bytes())
    }
}

/// Synchronous client helpers for the daemon protocol.
pub mod client {
    use super::*;

    /// One streamed job result (the client-side view of
    /// [`Response::Job`]).
    #[derive(Clone, Debug, PartialEq)]
    pub struct JobUpdate {
        /// Canonical job index.
        pub index: u64,
        /// Display form of the job key.
        pub key: String,
        /// Objective value.
        pub value: u64,
        /// Whether the assignment was verified feasible.
        pub feasible: bool,
        /// LOCAL round bill.
        pub rounds: u64,
        /// Wall-clock microseconds.
        pub micros: u64,
    }

    /// The closing summary of a solve/sweep stream.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SweepSummary {
        /// Jobs streamed.
        pub jobs: u64,
        /// Group summaries folded.
        pub groups: u64,
        /// Backend roll-ups folded.
        pub backends: u64,
        /// Daemon cache hits after the request.
        pub cache_hits: u64,
        /// Daemon cache misses after the request.
        pub cache_misses: u64,
        /// Request wall clock.
        pub wall_micros: u64,
    }

    /// Formats a [`Response::Stats`] the way `dapc-serve stats` prints
    /// it: the counter line, then the daemon's metrics snapshot rendered
    /// in its canonical (name-sorted) order. `None` for other variants.
    pub fn render_stats(resp: &Response) -> Option<String> {
        let Response::Stats {
            requests,
            jobs_solved,
            cache_families,
            cache_entries,
            cache_hits,
            cache_misses,
            metrics,
        } = resp
        else {
            return None;
        };
        let mut out = format!(
            "requests {requests}  jobs {jobs_solved}  cache {cache_families} families / \
             {cache_entries} entries  hits {cache_hits}  misses {cache_misses}\n"
        );
        out.push_str(&metrics.render());
        Some(out)
    }

    fn roundtrip(stream: &mut UnixStream, request: &Request) -> io::Result<Response> {
        write_frame(stream, &request.to_bytes())?;
        let body = read_frame(stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the stream")
        })?;
        Response::from_bytes(&body)
    }

    fn unexpected(resp: Response) -> io::Error {
        match resp {
            Response::Error { message } => io::Error::other(format!("daemon error: {message}")),
            other => io::Error::other(format!("unexpected daemon response {other:?}")),
        }
    }

    /// Pings the daemon at `socket`; returns its protocol version.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol errors.
    pub fn ping(socket: &Path) -> io::Result<u64> {
        let mut stream = UnixStream::connect(socket)?;
        match roundtrip(&mut stream, &Request::Ping)? {
            Response::Pong { protocol } => Ok(protocol),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol errors.
    pub fn stats(socket: &Path) -> io::Result<Response> {
        let mut stream = UnixStream::connect(socket)?;
        match roundtrip(&mut stream, &Request::Stats)? {
            r @ Response::Stats { .. } => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol errors.
    pub fn shutdown(socket: &Path) -> io::Result<()> {
        let mut stream = UnixStream::connect(socket)?;
        match roundtrip(&mut stream, &Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Runs a sweep (or, with `Request::Solve`, a single job) and
    /// drains its stream: `on_job` sees every [`JobUpdate`] in canonical
    /// order, the closing summary is returned.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol errors; an in-band
    /// [`Response::Error`] becomes an error too.
    pub fn run_streaming(
        socket: &Path,
        request: &Request,
        mut on_job: impl FnMut(JobUpdate),
    ) -> io::Result<SweepSummary> {
        let mut stream = UnixStream::connect(socket)?;
        write_frame(&mut stream, &request.to_bytes())?;
        loop {
            let body = read_frame(&mut stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed mid-stream")
            })?;
            match Response::from_bytes(&body)? {
                Response::Job {
                    index,
                    key,
                    value,
                    feasible,
                    rounds,
                    micros,
                } => on_job(JobUpdate {
                    index,
                    key,
                    value,
                    feasible,
                    rounds,
                    micros,
                }),
                Response::Summary {
                    jobs,
                    groups,
                    backends,
                    cache_hits,
                    cache_misses,
                    wall_micros,
                } => {
                    return Ok(SweepSummary {
                        jobs,
                        groups,
                        backends,
                        cache_hits,
                        cache_misses,
                        wall_micros,
                    })
                }
                other => return Err(unexpected(other)),
            }
        }
    }

    /// Convenience wrapper: sweep `spec` with `jobs`-way parallelism.
    ///
    /// # Errors
    ///
    /// As [`run_streaming`].
    pub fn sweep(
        socket: &Path,
        spec: &CorpusSpec,
        jobs: u64,
        on_job: impl FnMut(JobUpdate),
    ) -> io::Result<SweepSummary> {
        run_streaming(
            socket,
            &Request::Sweep {
                spec: spec.clone(),
                jobs,
            },
            on_job,
        )
    }
}
