//! The persistent solve daemon and its retrying client.
//!
//! A [`Daemon`] listens on a Unix-domain socket and serves
//! [`Request`]s framed by [`crate::proto`]. The point of keeping the
//! process alive between requests is the resident [`PrepCache`]: corpora
//! that revisit the same instance families (the common case in sweep
//! workflows) skip their memoised exact subset solves on every request
//! after the first, which is visible in the [`Response::Stats`] hit
//! counters.
//!
//! The daemon trusts nothing it reads: frames and specs go through the
//! hardened decoders, a bad message earns a [`Response::Error`] (or a
//! dropped connection if even the frame layer is broken) and the server
//! keeps serving. Connections are served by a bounded pool of handler
//! threads fed from a bounded queue — the load-shedding story is
//! explicit rather than emergent:
//!
//! - **Backpressure is in-band.** When the queue is full the acceptor
//!   answers one [`Response::Busy`] frame and closes; the retrying
//!   client backs off and reconnects. Nothing queues unboundedly.
//! - **Deadlines kill connections, not the daemon.** With a configured
//!   [`DaemonConfig::deadline`], a watchdog shuts down the socket of
//!   any solve running past its budget. The in-flight computation still
//!   runs to completion on its handler thread (threads cannot be killed
//!   safely) — the deadline bounds how long a *client* can be kept
//!   waiting, and frees its connection for a retry elsewhere.
//! - **Shutdown drains.** A [`Request::Shutdown`] stops the acceptor,
//!   lets every queued and in-flight connection finish, then unlinks
//!   the socket — concurrent sweeps in progress complete normally.
//!
//! Sharing the resident cache across handler threads is safe because
//! [`PrepCache`] has interior shared state, and cannot change any
//! result because every job's answer is a pure function of its key —
//! the cache moves work, never bytes.

use crate::proto::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use crate::spec::CorpusSpec;
use dapc_local::RoundCost;
use dapc_runtime::{solve_range_streaming_with_cache, JobResult, PrepCache, RuntimeConfig};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on the per-request `jobs` parallelism a client may ask for.
pub const MAX_REQUEST_JOBS: u64 = 16;

/// Daemon-layer metric handles (`serve.daemon.*`), resolved once.
mod metrics {
    use dapc_obs::{counter, gauge, histogram, Counter, Gauge, Histogram};
    use std::sync::OnceLock;

    /// Requests accepted (well-formed or not), across connections.
    pub fn requests() -> &'static Counter {
        static H: OnceLock<Counter> = OnceLock::new();
        H.get_or_init(|| counter("serve.daemon.requests"))
    }

    /// Connections waiting in the bounded queue right now.
    pub fn queue_depth() -> &'static Gauge {
        static H: OnceLock<Gauge> = OnceLock::new();
        H.get_or_init(|| gauge("serve.daemon.queue.depth"))
    }

    /// Connections answered with `Busy` because the queue was full.
    pub fn busy_rejections() -> &'static Counter {
        static H: OnceLock<Counter> = OnceLock::new();
        H.get_or_init(|| counter("serve.daemon.queue.busy_rejections"))
    }

    /// Connections killed by the per-request deadline watchdog.
    pub fn deadline_kills() -> &'static Counter {
        static H: OnceLock<Counter> = OnceLock::new();
        H.get_or_init(|| counter("serve.daemon.deadline_kills"))
    }

    /// End-to-end service latency of one request, by request kind.
    pub fn latency(kind: &Kind) -> &'static Histogram {
        static PING: OnceLock<Histogram> = OnceLock::new();
        static STATS: OnceLock<Histogram> = OnceLock::new();
        static SOLVE: OnceLock<Histogram> = OnceLock::new();
        static SWEEP: OnceLock<Histogram> = OnceLock::new();
        match kind {
            Kind::Ping => PING.get_or_init(|| histogram("serve.daemon.ping_micros")),
            Kind::Stats => STATS.get_or_init(|| histogram("serve.daemon.stats_micros")),
            Kind::Solve => SOLVE.get_or_init(|| histogram("serve.daemon.solve_micros")),
            Kind::Sweep => SWEEP.get_or_init(|| histogram("serve.daemon.sweep_micros")),
        }
    }

    /// The request kinds that get their own latency histogram.
    pub enum Kind {
        /// `Request::Ping`.
        Ping,
        /// `Request::Stats`.
        Stats,
        /// `Request::Solve`.
        Solve,
        /// `Request::Sweep`.
        Sweep,
    }
}

/// Concurrency and robustness knobs of a [`Daemon`].
#[derive(Clone, Copy, Debug)]
pub struct DaemonConfig {
    /// Handler threads serving connections concurrently.
    pub threads: usize,
    /// Bound on connections waiting for a handler; one more earns
    /// [`Response::Busy`].
    pub queue: usize,
    /// Per-request wall budget for solve/sweep requests; exceeding it
    /// gets the *connection* killed (the daemon survives, and the
    /// computation finishes into the resident cache). `None` disables
    /// the watchdog.
    pub deadline: Option<Duration>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            threads: 4,
            queue: 16,
            deadline: None,
        }
    }
}

/// State shared between the acceptor, the handler pool and the
/// watchdog.
struct Shared {
    cache: PrepCache,
    requests: AtomicU64,
    jobs_solved: AtomicU64,
    next_id: AtomicU64,
    /// Set by a `Shutdown` request; the acceptor stops, handlers drain.
    shutdown: AtomicBool,
    /// Set by `run` once every handler has exited — releases the
    /// watchdog (a plain `shutdown` check would race connections still
    /// draining).
    drained: AtomicBool,
    queue: Mutex<VecDeque<UnixStream>>,
    wake: Condvar,
    deadline: Option<Duration>,
    /// Deadline registrations: request id → (due time, a handle to the
    /// connection to kill).
    watch: Mutex<BTreeMap<u64, (Instant, UnixStream)>>,
}

/// The persistent solve server. See the module docs.
pub struct Daemon {
    listener: UnixListener,
    socket: PathBuf,
    cfg: DaemonConfig,
}

impl Daemon {
    /// Binds the daemon to `socket` with the default [`DaemonConfig`].
    ///
    /// # Errors
    ///
    /// As [`Daemon::bind_with`].
    pub fn bind(socket: &Path) -> io::Result<Self> {
        Self::bind_with(socket, DaemonConfig::default())
    }

    /// Binds the daemon to `socket`. A leftover socket file is removed
    /// only after probing it: if something still *accepts* connections
    /// there, a live daemon owns the address and binding fails with
    /// [`io::ErrorKind::AddrInUse`]; if connecting is refused, the file
    /// is the corpse of a crashed predecessor and is replaced.
    ///
    /// # Errors
    ///
    /// Propagates bind errors; `AddrInUse` when a live daemon holds the
    /// socket.
    pub fn bind_with(socket: &Path, cfg: DaemonConfig) -> io::Result<Self> {
        let listener = match UnixListener::bind(socket) {
            Ok(l) => l,
            Err(e) if e.kind() == io::ErrorKind::AddrInUse => match UnixStream::connect(socket) {
                Ok(_live) => {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("a live daemon already serves {}", socket.display()),
                    ))
                }
                Err(probe) if probe.kind() == io::ErrorKind::ConnectionRefused => {
                    std::fs::remove_file(socket)?;
                    UnixListener::bind(socket)?
                }
                Err(_probe) => return Err(e),
            },
            Err(e) => return Err(e),
        };
        Ok(Daemon {
            listener,
            socket: socket.to_path_buf(),
            cfg,
        })
    }

    /// The socket path this daemon serves on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Serves connections until a [`Request::Shutdown`] arrives, then
    /// drains every queued and in-flight connection, removes the socket
    /// file and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept errors (after stopping the pool). Per-connection
    /// I/O and decode errors are contained: the offending connection is
    /// dropped and the next one served.
    pub fn run(self) -> io::Result<()> {
        let shared = Arc::new(Shared {
            cache: PrepCache::new(),
            requests: AtomicU64::new(0),
            jobs_solved: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            drained: AtomicBool::new(false),
            queue: Mutex::new(VecDeque::new()),
            wake: Condvar::new(),
            deadline: self.cfg.deadline,
            watch: Mutex::new(BTreeMap::new()),
        });
        self.listener.set_nonblocking(true)?;
        let mut handlers = Vec::new();
        for i in 0..self.cfg.threads.max(1) {
            let shared = Arc::clone(&shared);
            handlers.push(
                std::thread::Builder::new()
                    .name(format!("dapc-handler-{i}"))
                    .spawn(move || handler_loop(&shared))?,
            );
        }
        let watchdog = shared.deadline.is_some().then(|| {
            let shared = Arc::clone(&shared);
            // dapc-allow(thread-spawn): the deadline watchdog is supervisor infrastructure, not solve work
            std::thread::spawn(move || watchdog_loop(&shared))
        });
        let queue_cap = self.cfg.queue.max(1);
        let accept_result = loop {
            // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
            if shared.shutdown.load(Ordering::SeqCst) {
                break Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _addr)) => {
                    // Chaos: the network ate the connection before the
                    // daemon saw a byte — the client's retry covers it.
                    if dapc_chaos::roll("daemon.accept").is_some() {
                        continue;
                    }
                    // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
                    let mut q = shared.queue.lock().expect("daemon queue");
                    if q.len() >= queue_cap {
                        drop(q);
                        if dapc_obs::enabled() {
                            metrics::busy_rejections().inc();
                        }
                        // Best-effort: a client that vanished mid-reject
                        // is not the daemon's problem.
                        let mut stream = stream;
                        let _ = write_frame(&mut stream, &Response::Busy.to_bytes());
                    } else {
                        q.push_back(stream);
                        let depth = q.len();
                        drop(q);
                        if dapc_obs::enabled() {
                            metrics::queue_depth().set(depth as u64);
                        }
                        shared.wake.notify_one();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => {
                    // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
                    shared.shutdown.store(true, Ordering::SeqCst);
                    break Err(e);
                }
            }
        };
        // Drain: handlers keep popping until the queue is empty, then
        // exit on the shutdown flag.
        shared.wake.notify_all();
        for h in handlers {
            h.join().ok();
        }
        // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
        shared.drained.store(true, Ordering::SeqCst);
        if let Some(w) = watchdog {
            w.join().ok();
        }
        std::fs::remove_file(&self.socket).ok();
        accept_result
    }
}

/// One handler thread: pop connections until shutdown *and* the queue
/// is drained.
fn handler_loop(shared: &Shared) {
    loop {
        let popped = {
            // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
            let mut q = shared.queue.lock().expect("daemon queue");
            loop {
                if let Some(s) = q.pop_front() {
                    break Some((s, q.len()));
                }
                // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (guard, _timeout) = shared
                    .wake
                    .wait_timeout(q, Duration::from_millis(100))
                    // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
                    .expect("daemon queue");
                q = guard;
            }
        };
        let Some((stream, depth)) = popped else {
            return;
        };
        if dapc_obs::enabled() {
            metrics::queue_depth().set(depth as u64);
        }
        // A torn connection is that client's problem, not the daemon's.
        let _ = serve_connection(shared, stream);
    }
}

/// Kills connections whose registered deadline has passed. The solve
/// itself keeps running (killing a thread mid-solve could poison the
/// shared cache); only the client's wait is bounded.
fn watchdog_loop(shared: &Shared) {
    // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
    while !shared.drained.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
        // dapc-allow(wall-clock): deadline sweeps are client-visible timeouts, never report bytes
        let now = Instant::now();
        // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
        let mut watch = shared.watch.lock().expect("daemon deadline registry");
        watch.retain(|_id, (due, stream)| {
            if *due <= now {
                stream.shutdown(std::net::Shutdown::Both).ok();
                if dapc_obs::enabled() {
                    metrics::deadline_kills().inc();
                }
                false
            } else {
                true
            }
        });
    }
}

/// Removes its deadline registration when the request finishes first.
struct DeadlineGuard<'a> {
    shared: &'a Shared,
    id: Option<u64>,
}

impl<'a> DeadlineGuard<'a> {
    fn register(shared: &'a Shared, stream: &UnixStream) -> Self {
        let id = shared.deadline.and_then(|budget| {
            let handle = stream.try_clone().ok()?;
            // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
            let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
            shared
                .watch
                .lock()
                // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
                .expect("daemon deadline registry")
                // dapc-allow(wall-clock): request deadline registration, never report bytes
                .insert(id, (Instant::now() + budget, handle));
            Some(id)
        });
        DeadlineGuard { shared, id }
    }
}

impl Drop for DeadlineGuard<'_> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            self.shared
                .watch
                .lock()
                // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
                .expect("daemon deadline registry")
                .remove(&id);
        }
    }
}

/// Serves one connection until the peer closes (or shutdown is
/// requested, which also returns cleanly between frames).
fn serve_connection(shared: &Shared, mut stream: UnixStream) -> io::Result<()> {
    // The timeout makes the idle wait between frames interruptible by
    // the shutdown flag. A peer stalling *inside* a frame longer than
    // the timeout errors out and loses the connection — the frame layer
    // never desyncs, it only ever drops.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    loop {
        // Idle wait: pull one byte, so a timeout here has consumed
        // nothing and the loop can check the shutdown flag and retry.
        let mut first = [0u8; 1];
        match io::Read::read(&mut (&stream), &mut first) {
            Ok(0) => return Ok(()), // peer closed between frames
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        // Stitch the probed byte back in front of the stream for the
        // frame reader.
        let mut reader = io::Read::chain(first.as_slice(), &stream);
        let Some(body) = read_frame(&mut reader)? else {
            return Ok(());
        };
        // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
        shared.requests.fetch_add(1, Ordering::SeqCst);
        if dapc_obs::enabled() {
            metrics::requests().inc();
        }
        let request = match Request::from_bytes(&body) {
            Ok(r) => r,
            Err(e) => {
                // The frame layer is intact, so the error is answerable
                // in-band and the connection survives.
                let resp = Response::Error {
                    message: format!("bad request: {e}"),
                };
                write_frame(&mut stream, &resp.to_bytes())?;
                continue;
            }
        };
        // Latency covers the whole service of the request, including
        // writing the reply frames. Shutdown is excluded: its timer
        // would never be read.
        // dapc-allow(wall-clock): request-latency telemetry only, gated on dapc_obs::enabled
        let started = dapc_obs::enabled().then(Instant::now);
        let kind = match request {
            Request::Ping => {
                let resp = Response::Pong {
                    protocol: PROTOCOL_VERSION,
                };
                write_frame(&mut stream, &resp.to_bytes())?;
                metrics::Kind::Ping
            }
            Request::Stats => {
                let c = shared.cache.stats();
                let resp = Response::Stats {
                    // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
                    requests: shared.requests.load(Ordering::SeqCst),
                    // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
                    jobs_solved: shared.jobs_solved.load(Ordering::SeqCst),
                    cache_families: c.families as u64,
                    cache_entries: c.entries as u64,
                    cache_hits: c.hits,
                    cache_misses: c.misses,
                    metrics: dapc_obs::MetricsSnapshot::capture(),
                };
                write_frame(&mut stream, &resp.to_bytes())?;
                metrics::Kind::Stats
            }
            Request::Shutdown => {
                write_frame(&mut stream, &Response::ShutdownAck.to_bytes())?;
                // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
                shared.shutdown.store(true, Ordering::SeqCst);
                shared.wake.notify_all();
                return Ok(());
            }
            Request::Solve { spec, index } => {
                let len = spec.grid_len() as u64;
                if index >= len {
                    let resp = Response::Error {
                        message: format!("job index {index} out of range for {len} jobs"),
                    };
                    write_frame(&mut stream, &resp.to_bytes())?;
                } else {
                    let range = index as usize..index as usize + 1;
                    let _deadline = DeadlineGuard::register(shared, &stream);
                    stream_solve(shared, &mut stream, &spec, range, 1)?;
                }
                metrics::Kind::Solve
            }
            Request::Sweep { spec, jobs } => {
                let jobs = jobs.clamp(1, MAX_REQUEST_JOBS) as usize;
                let range = 0..spec.grid_len();
                let _deadline = DeadlineGuard::register(shared, &stream);
                stream_solve(shared, &mut stream, &spec, range, jobs)?;
                metrics::Kind::Sweep
            }
        };
        if let Some(started) = started {
            metrics::latency(&kind).observe_micros(started.elapsed());
        }
    }
}

/// Solves `range` of `spec`'s corpus against the resident cache,
/// streaming one [`Response::Job`] per result and a closing
/// [`Response::Summary`].
fn stream_solve(
    shared: &Shared,
    stream: &mut UnixStream,
    spec: &CorpusSpec,
    range: std::ops::Range<usize>,
    jobs: usize,
) -> io::Result<()> {
    let corpus = spec.build(); // specs from the wire are pre-validated
    let rt = RuntimeConfig::new().jobs(jobs);
    // The hook runs on solver threads; the sink shares the socket
    // with this frame writer and remembers the first write failure
    // (solving finishes regardless — the work warms the cache even
    // when the requester is gone).
    let sink = Arc::new(Mutex::new(stream.try_clone()?));
    let failed = Arc::new(Mutex::new(None::<io::Error>));
    let next_index = Arc::new(AtomicU64::new(range.start as u64));
    let hook_sink = Arc::clone(&sink);
    let hook_failed = Arc::clone(&failed);
    let part = solve_range_streaming_with_cache(
        &corpus,
        range,
        &rt,
        &shared.cache,
        move |r: JobResult| {
            // Results arrive in canonical order, so a counter
            // recovers each job's global index.
            // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
            let index = next_index.fetch_add(1, Ordering::SeqCst);
            let frame = Response::Job {
                index,
                key: r.key.to_string(),
                value: r.report.value,
                feasible: r.report.feasible(),
                rounds: r.report.rounds() as u64,
                micros: r.micros,
            }
            .to_bytes();
            // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
            let mut failed = hook_failed.lock().expect("daemon sink failure flag");
            if failed.is_none() {
                // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
                let mut sink = hook_sink.lock().expect("daemon sink");
                if let Err(e) = write_frame(&mut *sink, &frame) {
                    *failed = Some(e);
                }
            }
        },
    );
    shared
        .jobs_solved
        // ordering: SeqCst — daemon control plane; total order over throughput off the hot path
        .fetch_add(part.jobs as u64, Ordering::SeqCst);
    // dapc-allow(panic): poisoned only if a sibling worker already panicked; propagate that crash
    if let Some(e) = failed.lock().expect("daemon sink failure flag").take() {
        return Err(e);
    }
    // A request range is one contiguous span, so the aggregator can
    // finalise it without full-corpus coverage (no interior gap).
    let jobs = part.jobs as u64;
    let wall = part.wall;
    let (groups, backends) = part.aggregator.finish();
    let cache = shared.cache.stats();
    let resp = Response::Summary {
        jobs,
        groups: groups.len() as u64,
        backends: backends.len() as u64,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        wall_micros: wall.as_micros() as u64,
    };
    write_frame(stream, &resp.to_bytes())
}

/// Synchronous client helpers for the daemon protocol.
pub mod client {
    use super::*;

    /// One streamed job result (the client-side view of
    /// [`Response::Job`]).
    #[derive(Clone, Debug, PartialEq)]
    pub struct JobUpdate {
        /// Canonical job index.
        pub index: u64,
        /// Display form of the job key.
        pub key: String,
        /// Objective value.
        pub value: u64,
        /// Whether the assignment was verified feasible.
        pub feasible: bool,
        /// LOCAL round bill.
        pub rounds: u64,
        /// Wall-clock microseconds.
        pub micros: u64,
    }

    /// The closing summary of a solve/sweep stream.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct SweepSummary {
        /// Jobs streamed.
        pub jobs: u64,
        /// Group summaries folded.
        pub groups: u64,
        /// Backend roll-ups folded.
        pub backends: u64,
        /// Daemon cache hits after the request.
        pub cache_hits: u64,
        /// Daemon cache misses after the request.
        pub cache_misses: u64,
        /// Request wall clock.
        pub wall_micros: u64,
    }

    /// Capped exponential backoff for reconnecting clients. Retrying is
    /// always safe against this daemon: job results are pure functions
    /// of the job key, so a replayed request streams byte-identical
    /// results (timing columns aside).
    #[derive(Clone, Copy, Debug)]
    pub struct RetryPolicy {
        /// Total connection attempts (≥ 1).
        pub attempts: u32,
        /// Delay before the first retry; doubles per retry.
        pub base_delay: Duration,
        /// Ceiling on the backoff delay.
        pub max_delay: Duration,
    }

    impl Default for RetryPolicy {
        fn default() -> Self {
            RetryPolicy {
                attempts: 5,
                base_delay: Duration::from_millis(50),
                max_delay: Duration::from_secs(1),
            }
        }
    }

    impl RetryPolicy {
        /// The backoff before retry number `retry` (0-based):
        /// `base_delay * 2^retry`, capped at `max_delay`.
        pub fn delay(&self, retry: u32) -> Duration {
            let factor = 2u32.saturating_pow(retry.min(16));
            (self.base_delay * factor).min(self.max_delay)
        }
    }

    /// Whether an error is worth a reconnect: connection-level failures
    /// (the daemon died, restarted, dropped us, or shed load) rather
    /// than in-band request rejections.
    fn retryable(kind: io::ErrorKind) -> bool {
        matches!(
            kind,
            io::ErrorKind::ConnectionRefused
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::BrokenPipe
                | io::ErrorKind::UnexpectedEof
                | io::ErrorKind::WouldBlock
                | io::ErrorKind::TimedOut
                | io::ErrorKind::NotFound
                | io::ErrorKind::Interrupted
        )
    }

    /// Formats a [`Response::Stats`] the way `dapc-serve stats` prints
    /// it: the counter line, then the daemon's metrics snapshot rendered
    /// in its canonical (name-sorted) order. `None` for other variants.
    pub fn render_stats(resp: &Response) -> Option<String> {
        let Response::Stats {
            requests,
            jobs_solved,
            cache_families,
            cache_entries,
            cache_hits,
            cache_misses,
            metrics,
        } = resp
        else {
            return None;
        };
        let mut out = format!(
            "requests {requests}  jobs {jobs_solved}  cache {cache_families} families / \
             {cache_entries} entries  hits {cache_hits}  misses {cache_misses}\n"
        );
        out.push_str(&metrics.render());
        Some(out)
    }

    fn roundtrip(stream: &mut UnixStream, request: &Request) -> io::Result<Response> {
        write_frame(stream, &request.to_bytes())?;
        let body = read_frame(stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the stream")
        })?;
        Response::from_bytes(&body)
    }

    fn unexpected(resp: Response) -> io::Error {
        match resp {
            Response::Error { message } => io::Error::other(format!("daemon error: {message}")),
            // Load shedding is a connection-level condition: surface it
            // with a retryable kind so the backoff loop reconnects.
            Response::Busy => io::Error::new(io::ErrorKind::WouldBlock, "daemon is at capacity"),
            other => io::Error::other(format!("unexpected daemon response {other:?}")),
        }
    }

    /// Pings the daemon at `socket`; returns its protocol version.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol errors.
    pub fn ping(socket: &Path) -> io::Result<u64> {
        let mut stream = UnixStream::connect(socket)?;
        match roundtrip(&mut stream, &Request::Ping)? {
            Response::Pong { protocol } => Ok(protocol),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the daemon's counters.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol errors.
    pub fn stats(socket: &Path) -> io::Result<Response> {
        let mut stream = UnixStream::connect(socket)?;
        match roundtrip(&mut stream, &Request::Stats)? {
            r @ Response::Stats { .. } => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol errors.
    pub fn shutdown(socket: &Path) -> io::Result<()> {
        let mut stream = UnixStream::connect(socket)?;
        match roundtrip(&mut stream, &Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Runs a sweep (or, with `Request::Solve`, a single job) and
    /// drains its stream: `on_job` sees every [`JobUpdate`] in canonical
    /// order, the closing summary is returned.
    ///
    /// # Errors
    ///
    /// Propagates connection and protocol errors; an in-band
    /// [`Response::Error`] becomes an error too, and [`Response::Busy`]
    /// surfaces as [`io::ErrorKind::WouldBlock`].
    pub fn run_streaming(
        socket: &Path,
        request: &Request,
        mut on_job: impl FnMut(JobUpdate),
    ) -> io::Result<SweepSummary> {
        let mut stream = UnixStream::connect(socket)?;
        write_frame(&mut stream, &request.to_bytes())?;
        loop {
            let body = read_frame(&mut stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed mid-stream")
            })?;
            match Response::from_bytes(&body)? {
                Response::Job {
                    index,
                    key,
                    value,
                    feasible,
                    rounds,
                    micros,
                } => on_job(JobUpdate {
                    index,
                    key,
                    value,
                    feasible,
                    rounds,
                    micros,
                }),
                Response::Summary {
                    jobs,
                    groups,
                    backends,
                    cache_hits,
                    cache_misses,
                    wall_micros,
                } => {
                    return Ok(SweepSummary {
                        jobs,
                        groups,
                        backends,
                        cache_hits,
                        cache_misses,
                        wall_micros,
                    })
                }
                other => return Err(unexpected(other)),
            }
        }
    }

    /// [`run_streaming`] behind a [`RetryPolicy`]: reconnects on
    /// connection-level failures (including [`Response::Busy`]) with
    /// capped exponential backoff. Job updates are buffered per attempt
    /// and delivered to `on_job` only from the attempt that completes,
    /// so a retried stream never double-delivers — and because results
    /// are pure functions of job keys, the delivered stream is the same
    /// whichever attempt wins.
    ///
    /// # Errors
    ///
    /// The last connection-level error once attempts are exhausted, or
    /// the first non-retryable error immediately.
    pub fn run_streaming_with_retry(
        socket: &Path,
        request: &Request,
        policy: &RetryPolicy,
        mut on_job: impl FnMut(JobUpdate),
    ) -> io::Result<SweepSummary> {
        let attempts = policy.attempts.max(1);
        let mut last: Option<io::Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(policy.delay(attempt - 1));
            }
            let mut buffered: Vec<JobUpdate> = Vec::new();
            match run_streaming(socket, request, |j| buffered.push(j)) {
                Ok(summary) => {
                    for j in buffered {
                        on_job(j);
                    }
                    return Ok(summary);
                }
                Err(e) if retryable(e.kind()) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("retry budget exhausted")))
    }

    /// Convenience wrapper: sweep `spec` with `jobs`-way parallelism.
    ///
    /// # Errors
    ///
    /// As [`run_streaming`].
    pub fn sweep(
        socket: &Path,
        spec: &CorpusSpec,
        jobs: u64,
        on_job: impl FnMut(JobUpdate),
    ) -> io::Result<SweepSummary> {
        run_streaming(
            socket,
            &Request::Sweep {
                spec: spec.clone(),
                jobs,
            },
            on_job,
        )
    }

    /// Convenience wrapper: [`sweep`] behind a [`RetryPolicy`].
    ///
    /// # Errors
    ///
    /// As [`run_streaming_with_retry`].
    pub fn sweep_with_retry(
        socket: &Path,
        spec: &CorpusSpec,
        jobs: u64,
        policy: &RetryPolicy,
        on_job: impl FnMut(JobUpdate),
    ) -> io::Result<SweepSummary> {
        run_streaming_with_retry(
            socket,
            &Request::Sweep {
                spec: spec.clone(),
                jobs,
            },
            policy,
            on_job,
        )
    }
}
