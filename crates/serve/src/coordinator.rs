//! Process supervision and the fault-tolerant sweep coordinator.
//!
//! The [`Supervisor`] is the generic layer: a queue of tasks, a cap of
//! concurrently running worker processes, a straggler timeout, and a
//! judge that inspects each worker's exit and decides — finished,
//! requeue (possibly as *different*, smaller tasks: the salvage), or
//! abort the whole run. It knows nothing about sweeps; the `tables`
//! orchestrator reuses it with whole shards as tasks.
//!
//! [`orchestrate_sweep`] is the sweep-shaped instantiation: tasks are
//! contiguous job ranges of a [`CorpusSpec`]'s corpus, workers checkpoint
//! unit-aligned [`dapc_runtime::PartReport`] files into the sweep
//! directory, and the judge rescans those files after every exit — a
//! crashed or killed worker forfeits only its unfinished remainder,
//! which is requeued for whichever worker slot frees first. Because
//! every job's result is a pure function of its [`dapc_runtime::JobKey`],
//! the merged result is byte-identical to the single-process sweep no
//! matter how many workers died on the way.

use crate::checkpoint::{gc_stale_tmp, scan_parts, uncovered, SweepManifest};
use crate::exit;
use crate::spec::CorpusSpec;
use dapc_runtime::{snap, PartReport, StreamReport};
use std::collections::VecDeque;
use std::io;
use std::ops::Range;
use std::path::Path;
use std::process::Child;
use std::time::{Duration, Instant};

/// Supervision-layer metric handles (`serve.supervisor.*` and
/// `serve.sweep.*`), resolved once. These shadow the per-run
/// [`SuperviseStats`]/[`SweepOutcome`] counters with process-lifetime
/// totals, so a daemon or long-lived orchestrator accumulates across
/// runs.
mod metrics {
    use dapc_obs::{counter, Counter};
    use std::sync::OnceLock;

    pub fn spawns() -> &'static Counter {
        static H: OnceLock<Counter> = OnceLock::new();
        H.get_or_init(|| counter("serve.supervisor.spawns"))
    }

    pub fn retries() -> &'static Counter {
        static H: OnceLock<Counter> = OnceLock::new();
        H.get_or_init(|| counter("serve.supervisor.retries"))
    }

    pub fn timeouts() -> &'static Counter {
        static H: OnceLock<Counter> = OnceLock::new();
        H.get_or_init(|| counter("serve.supervisor.timeouts"))
    }

    /// Jobs a failed attempt still completed (checkpointed units kept
    /// by the salvage scan instead of being re-solved).
    pub fn salvaged_jobs() -> &'static Counter {
        static H: OnceLock<Counter> = OnceLock::new();
        H.get_or_init(|| counter("serve.sweep.salvaged_jobs"))
    }

    /// Ranges put back on the queue by requeue verdicts.
    pub fn requeued_ranges() -> &'static Counter {
        static H: OnceLock<Counter> = OnceLock::new();
        H.get_or_init(|| counter("serve.sweep.requeued_ranges"))
    }
}

/// How a supervised worker process ended.
#[derive(Clone, Copy, Debug)]
pub struct Exit {
    /// The exit code, `None` on signal death (crash, kill, abort).
    pub code: Option<i32>,
    /// Whether the supervisor killed it as a straggler.
    pub timed_out: bool,
}

/// The judge's ruling on one finished worker.
pub enum Verdict<T> {
    /// The task is complete; free the slot.
    Done,
    /// The task is not complete: requeue `tasks` in its place (typically
    /// the unfinished remainder). `progress` states whether the attempt
    /// moved the sweep forward — progress resets the attempt budget, so
    /// a worker that keeps dying but keeps checkpointing is re-spawned
    /// indefinitely while a worker dying without progress exhausts
    /// [`Supervisor::max_attempts`].
    Requeue {
        /// Replacement tasks (empty is allowed and equals `Done`).
        tasks: Vec<T>,
        /// Whether the failed attempt still advanced the run.
        progress: bool,
    },
    /// Deterministic failure — abort the whole run with this message.
    Fatal(String),
}

/// Counters of one [`Supervisor::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuperviseStats {
    /// Worker processes spawned (first attempts and retries).
    pub spawns: usize,
    /// Requeue verdicts (each one a failure that was retried).
    pub retries: usize,
    /// Stragglers killed by the timeout.
    pub timeouts: usize,
}

/// A bounded pool of supervised worker processes with retry and
/// straggler-kill policy. See the module docs.
#[derive(Clone, Copy, Debug)]
pub struct Supervisor {
    /// Maximum concurrently running workers.
    pub slots: usize,
    /// Attempts a task may consume without progress before the run
    /// aborts.
    pub max_attempts: u32,
    /// Wall-clock budget per worker; exceeding it gets the worker killed
    /// and judged with `timed_out` (no timeout when `None`).
    pub timeout: Option<Duration>,
}

impl Supervisor {
    /// Runs `tasks` to completion: spawns up to [`Supervisor::slots`]
    /// workers via `spawn`, waits on them, and routes every exit through
    /// `judge`. `spawn` receives the task and its attempt number
    /// (0-based); `judge` receives the task and its [`Exit`].
    ///
    /// # Errors
    ///
    /// Fails when `spawn` or `judge` does, when a judge rules
    /// [`Verdict::Fatal`], or when a task exhausts
    /// [`Supervisor::max_attempts`] attempts without progress.
    pub fn run<T, S, J>(
        &self,
        tasks: Vec<T>,
        mut spawn: S,
        mut judge: J,
    ) -> io::Result<SuperviseStats>
    where
        T: std::fmt::Debug,
        S: FnMut(&T, u32) -> io::Result<Child>,
        J: FnMut(&T, &Exit) -> io::Result<Verdict<T>>,
    {
        let slots = self.slots.max(1);
        let mut queue: VecDeque<(T, u32)> = tasks.into_iter().map(|t| (t, 0)).collect();
        let mut running: Vec<(T, u32, Child, Instant)> = Vec::new();
        let mut stats = SuperviseStats::default();
        while !queue.is_empty() || !running.is_empty() {
            while running.len() < slots {
                let Some((task, attempt)) = queue.pop_front() else {
                    break;
                };
                // Chaos: a delayed spawn (slow fork/exec, loaded box) —
                // shifts interleavings without changing any result.
                dapc_chaos::stall("spawn.delay", 30);
                let child = spawn(&task, attempt)?;
                stats.spawns += 1;
                if dapc_obs::enabled() {
                    metrics::spawns().inc();
                }
                // dapc-allow(wall-clock): worker start time drives retry backoff, never report bytes
                running.push((task, attempt, child, Instant::now()));
            }
            // Poll for any exit or straggler; workers are independent
            // processes, so a short sleep between polls costs nothing
            // but latency.
            let (i, exit) = 'poll: loop {
                for (i, (_task, _attempt, child, spawned)) in running.iter_mut().enumerate() {
                    if let Some(status) = child.try_wait()? {
                        break 'poll (
                            i,
                            Exit {
                                code: status.code(),
                                timed_out: false,
                            },
                        );
                    }
                    if self.timeout.is_some_and(|t| spawned.elapsed() > t) {
                        child.kill().ok();
                        child.wait()?;
                        stats.timeouts += 1;
                        if dapc_obs::enabled() {
                            metrics::timeouts().inc();
                        }
                        break 'poll (
                            i,
                            Exit {
                                code: None,
                                timed_out: true,
                            },
                        );
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            };
            let (task, attempt, _child, _spawned) = running.swap_remove(i);
            match judge(&task, &exit)? {
                Verdict::Done => {}
                Verdict::Requeue { tasks, progress } => {
                    stats.retries += 1;
                    if dapc_obs::enabled() {
                        metrics::retries().inc();
                    }
                    let next = if progress { 0 } else { attempt + 1 };
                    if next >= self.max_attempts {
                        return Err(io::Error::other(format!(
                            "task {task:?} failed {} attempts without progress (last exit {exit:?})",
                            attempt + 1
                        )));
                    }
                    for t in tasks {
                        queue.push_back((t, next));
                    }
                }
                Verdict::Fatal(msg) => {
                    for (_t, _a, mut child, _s) in running.drain(..) {
                        child.kill().ok();
                        child.wait().ok();
                    }
                    return Err(io::Error::other(msg));
                }
            }
        }
        Ok(stats)
    }
}

/// Policy of one orchestrated sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Worker processes to run concurrently.
    pub workers: usize,
    /// Checkpoint unit in jobs (ignored when resuming a directory whose
    /// manifest pins a different unit — alignment beats preference).
    pub unit: usize,
    /// Attempt budget per task without progress.
    pub max_attempts: u32,
    /// Straggler timeout per worker.
    pub timeout: Option<Duration>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            workers: 2,
            unit: 8,
            max_attempts: 3,
            timeout: None,
        }
    }
}

/// What an orchestrated sweep produced, beyond the report itself.
#[derive(Debug)]
pub struct SweepOutcome {
    /// The merged aggregation — byte-identical in groups and backends to
    /// the single-process sweep of the same spec.
    pub report: StreamReport,
    /// Total jobs of the corpus.
    pub corpus_jobs: usize,
    /// Jobs already covered by checkpoints when this run started (a
    /// resume skips exactly these).
    pub resumed_jobs: usize,
    /// Jobs solved by this run's workers.
    pub solved_jobs: usize,
    /// Supervision counters.
    pub stats: SuperviseStats,
    /// Torn or foreign part files ignored by the scans.
    pub skipped_parts: usize,
    /// Unloadable part files the scans moved into
    /// [`crate::checkpoint::QUARANTINE_DIR`] (a subset of
    /// `skipped_parts`).
    pub quarantined_parts: usize,
    /// Stale `*.tmp` checkpoint temporaries collected on startup.
    pub collected_tmp: usize,
}

/// Runs (or resumes) the sweep described by `spec` in checkpoint
/// directory `dir` with worker processes obtained from `spawn_worker`,
/// which receives a job range and the attempt number and must start a
/// process that checkpoints that range into `dir` (the `dapc-serve
/// worker` subcommand; tests may substitute anything with the same
/// contract).
///
/// Crashed, killed and straggling workers forfeit only their unfinished
/// remainder: the judge rescans the directory's part files after every
/// exit, salvages completed units, and requeues the uncovered rest of
/// the range for the next free slot.
///
/// # Errors
///
/// Fails when `dir` already belongs to a *different* sweep, when a
/// worker dies a deterministic death ([`exit::EXIT_BAD_SNAPSHOT`],
/// [`exit::EXIT_SOLVE_PANIC`], [`exit::EXIT_USAGE`]), when a range
/// exhausts its attempt budget without progress, or on filesystem
/// errors.
pub fn orchestrate_sweep<S>(
    dir: &Path,
    spec: &CorpusSpec,
    cfg: &SweepConfig,
    spawn_worker: S,
) -> io::Result<SweepOutcome>
where
    S: FnMut(&Range<usize>, u32) -> io::Result<Child>,
{
    spec.validate()?;
    std::fs::create_dir_all(dir)?;
    let mut manifest = match SweepManifest::load(dir)? {
        Some(m) => {
            if m.spec != *spec {
                return Err(snap::invalid(format!(
                    "{} already holds checkpoints of a different sweep",
                    dir.display()
                )));
            }
            m
        }
        None => {
            let m = SweepManifest::new(spec.clone(), cfg.unit);
            m.store(dir)?;
            m
        }
    };
    let corpus_jobs = manifest.corpus_jobs;

    // No worker is running yet, so any dotted temporary is a leak from
    // a crashed predecessor — collect them before the first scan.
    let collected_tmp = gc_stale_tmp(dir)?;

    let scan = scan_parts(dir, corpus_jobs)?;
    let resumed_jobs = scan.jobs_done;
    let mut skipped_parts = scan.skipped;
    let mut quarantined_parts = scan.quarantined;
    let remaining = uncovered(corpus_jobs, &scan.covered);
    let remaining_jobs: usize = remaining.iter().map(Range::len).sum();

    // Carve the remainder into one contiguous chunk per worker slot (the
    // final partial chunks just leave slots idle sooner).
    let target = remaining_jobs.div_ceil(cfg.workers.max(1)).max(1);
    let mut tasks: Vec<Range<usize>> = Vec::new();
    for r in remaining {
        let mut cursor = r.start;
        while cursor < r.end {
            let end = (cursor + target).min(r.end);
            tasks.push(cursor..end);
            cursor = end;
        }
    }

    let supervisor = Supervisor {
        slots: cfg.workers,
        max_attempts: cfg.max_attempts,
        timeout: cfg.timeout,
    };
    let mut spawn_worker = spawn_worker;
    let stats = supervisor.run(
        tasks,
        |task, attempt| spawn_worker(task, attempt),
        |task, exit| {
            // Parts on disk are the ground truth of what the attempt
            // achieved, whatever the exit status claims.
            let scan = scan_parts(dir, corpus_jobs)?;
            skipped_parts = scan.skipped.max(skipped_parts);
            quarantined_parts += scan.quarantined;
            manifest.done = scan.covered.clone();
            manifest.store(dir)?;
            let owed: Vec<Range<usize>> = uncovered(corpus_jobs, &scan.covered)
                .into_iter()
                .filter_map(|r| {
                    let piece = r.start.max(task.start)..r.end.min(task.end);
                    (!piece.is_empty()).then_some(piece)
                })
                .collect();
            if owed.is_empty() {
                return Ok(Verdict::Done);
            }
            if !exit.timed_out && exit.code != Some(exit::EXIT_OK) && !exit::is_retryable(exit.code)
            {
                return Ok(Verdict::Fatal(format!(
                    "worker for jobs {task:?} failed deterministically (exit {:?})",
                    exit.code
                )));
            }
            let owed_jobs: usize = owed.iter().map(Range::len).sum();
            if dapc_obs::enabled() {
                // The owed pieces are clipped to `task` and disjoint, so
                // the difference is exactly what the attempt salvaged.
                metrics::salvaged_jobs().add((task.len() - owed_jobs) as u64);
                metrics::requeued_ranges().add(owed.len() as u64);
            }
            Ok(Verdict::Requeue {
                tasks: owed,
                progress: owed_jobs < task.len(),
            })
        },
    )?;

    // Stitch the full corpus back together from the checkpoint files.
    let scan = scan_parts(dir, corpus_jobs)?;
    skipped_parts = skipped_parts.max(scan.skipped);
    quarantined_parts += scan.quarantined;
    if scan.covered.len() != 1 || scan.covered[0] != (0..corpus_jobs) {
        return Err(io::Error::other(format!(
            "sweep ended but checkpoints cover {:?} of 0..{corpus_jobs}",
            scan.covered
        )));
    }
    manifest.done = scan.covered.clone();
    manifest.store(dir)?;
    let mut parts = scan.parts.into_iter();
    let mut merged: PartReport = parts.next().ok_or_else(|| {
        io::Error::other("checkpoint scan reported full coverage but produced no parts")
    })?;
    for p in parts {
        merged.merge(p);
    }
    Ok(SweepOutcome {
        report: merged.finish(),
        corpus_jobs,
        resumed_jobs,
        solved_jobs: corpus_jobs - resumed_jobs,
        stats,
        skipped_parts,
        quarantined_parts,
        collected_tmp,
    })
}
