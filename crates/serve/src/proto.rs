//! The daemon's length-prefixed binary wire protocol.
//!
//! Frames are `u32` little-endian body length followed by the body; a
//! body is one tag byte followed by tag-specific fields in the same
//! primitive encodings as the snapshot formats ([`dapc_runtime::snap`]).
//! The hardening contract matches them too, because socket bytes are
//! the least trusted input in the system:
//!
//! - **No length drives an allocation.** Frame bodies are capped at
//!   [`MAX_FRAME`] *before* any buffer is sized, and every nested
//!   length field reads through `Read::take`.
//! - **Truncation at any byte is an `Err`**, and so are trailing bytes
//!   after a decoded message — a frame means exactly one message.
//! - **Unknown tags are errors**, not skipped extensions; version skew
//!   is negotiated by [`PROTOCOL_VERSION`] in the ping, not guessed at
//!   per message.

use crate::spec::CorpusSpec;
use dapc_obs::MetricsSnapshot;
use dapc_runtime::snap;
use std::io::{self, Read, Write};

/// Protocol version spoken by this build; [`Response::Pong`] carries it
/// so clients can refuse a skewed daemon.
///
/// Version history: 1 — initial protocol; 2 — [`Response::Stats`] gained
/// the embedded [`MetricsSnapshot`]; 3 — [`Response::Busy`] (in-band
/// backpressure when the daemon's bounded request queue is full).
pub const PROTOCOL_VERSION: u64 = 3;

/// Hard cap on a frame body, checked before any allocation. Large
/// enough for any spec the [`crate::spec::SPEC_LIMITS`] caps admit,
/// small enough that a hostile length field cannot balloon the server.
pub const MAX_FRAME: u32 = 1 << 20;

/// A client-to-daemon message.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness + version check.
    Ping,
    /// Solve the single canonical job `index` of `spec`'s corpus.
    Solve {
        /// The sweep description.
        spec: CorpusSpec,
        /// Canonical job index.
        index: u64,
    },
    /// Solve the whole corpus, streaming one [`Response::Job`] per job
    /// (canonical order) before the closing [`Response::Summary`].
    Sweep {
        /// The sweep description.
        spec: CorpusSpec,
        /// Requested intra-process parallelism (clamped by the daemon).
        jobs: u64,
    },
    /// Report daemon counters.
    Stats,
    /// Ask the daemon to exit after acknowledging.
    Shutdown,
}

/// A daemon-to-client message.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Ping reply.
    Pong {
        /// The daemon's [`PROTOCOL_VERSION`].
        protocol: u64,
    },
    /// One solved job of a solve/sweep request.
    Job {
        /// Canonical job index.
        index: u64,
        /// Display form of the job key.
        key: String,
        /// Objective value.
        value: u64,
        /// Whether the assignment was verified feasible.
        feasible: bool,
        /// LOCAL round bill of the solve.
        rounds: u64,
        /// Wall-clock microseconds of the solve.
        micros: u64,
    },
    /// Closes a solve/sweep stream.
    Summary {
        /// Jobs streamed.
        jobs: u64,
        /// Group summaries folded.
        groups: u64,
        /// Backend roll-ups folded.
        backends: u64,
        /// Prep-cache hits accumulated in the daemon's resident cache.
        cache_hits: u64,
        /// Prep-cache misses likewise.
        cache_misses: u64,
        /// Wall-clock microseconds of the request.
        wall_micros: u64,
    },
    /// Stats reply.
    Stats {
        /// Requests served since start.
        requests: u64,
        /// Jobs solved since start.
        jobs_solved: u64,
        /// Resident prep-cache families.
        cache_families: u64,
        /// Resident prep-cache entries.
        cache_entries: u64,
        /// Lifetime cache hits.
        cache_hits: u64,
        /// Lifetime cache misses.
        cache_misses: u64,
        /// The daemon's full metrics snapshot (empty when observability
        /// is disabled in the daemon process).
        metrics: MetricsSnapshot,
    },
    /// The request failed; the connection stays usable.
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// Shutdown acknowledged; the daemon exits after sending this.
    ShutdownAck,
    /// The daemon's bounded request queue is full; the connection is
    /// closed after this frame. Retry after a backoff — requests are
    /// idempotent (results are pure functions of the job key), so a
    /// retried sweep returns byte-identical frames.
    Busy,
}

/// Writes one frame: `u32` little-endian length, then the body.
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] when `body` exceeds
/// [`MAX_FRAME`]; propagates writer errors.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| {
            snap::invalid(format!(
                "frame body of {} bytes exceeds the cap",
                body.len()
            ))
        })?;
    // Chaos: tear the frame mid-write — the peer sees UnexpectedEof
    // inside a frame (never a valid shorter frame, the header length
    // still promises the full body) and must drop the connection.
    if let Some(mut roll) = dapc_chaos::roll("proto.write") {
        w.write_all(&len.to_le_bytes())?;
        w.write_all(&body[..roll.pick(body.len().max(1))])?;
        w.flush()?;
        return Err(io::Error::new(
            io::ErrorKind::BrokenPipe,
            "chaos: frame torn mid-write",
        ));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Reads one frame body, or `Ok(None)` on a clean end-of-stream (the
/// peer closed between frames).
///
/// # Errors
///
/// Fails with [`io::ErrorKind::InvalidData`] when the length field
/// exceeds [`MAX_FRAME`] (checked before any allocation), with
/// [`io::ErrorKind::UnexpectedEof`] when the stream ends inside a frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    // Chaos: a stalled read (slow peer, congested socket) — exercises
    // read timeouts and deadlines without changing any byte.
    dapc_chaos::stall("proto.read", 40);
    let mut len = [0u8; 4];
    // A clean close is only clean *between* frames.
    let mut filled = 0;
    while filled < len.len() {
        let n = r.read(&mut len[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame header",
            ));
        }
        filled += n;
    }
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(snap::invalid(format!(
            "frame length {len} exceeds the {MAX_FRAME}-byte cap"
        )));
    }
    let mut body = Vec::new();
    r.take(u64::from(len)).read_to_end(&mut body)?;
    if body.len() as u32 != len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("truncated frame: {} of {len} bytes", body.len()),
        ));
    }
    Ok(Some(body))
}

impl Request {
    /// Encodes the request as one frame body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::new();
        let r: io::Result<()> = (|| {
            match self {
                Request::Ping => w.write_all(&[1])?,
                Request::Solve { spec, index } => {
                    w.write_all(&[2])?;
                    snap::write_bytes(&mut w, &spec.to_bytes())?;
                    snap::write_u64(&mut w, *index)?;
                }
                Request::Sweep { spec, jobs } => {
                    w.write_all(&[3])?;
                    snap::write_bytes(&mut w, &spec.to_bytes())?;
                    snap::write_u64(&mut w, *jobs)?;
                }
                Request::Stats => w.write_all(&[4])?,
                Request::Shutdown => w.write_all(&[5])?,
            }
            Ok(())
        })();
        // dapc-allow(panic): writing to a Vec cannot fail
        r.expect("writing to a Vec cannot fail");
        w
    }

    /// Decodes one frame body. All-or-nothing: unknown tags, embedded
    /// specs that fail validation, truncation, and trailing bytes are
    /// all errors.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] or
    /// [`io::ErrorKind::UnexpectedEof`] as above.
    pub fn from_bytes(body: &[u8]) -> io::Result<Self> {
        let mut r = body;
        let req = match snap::read_u8(&mut r)? {
            1 => Request::Ping,
            2 => Request::Solve {
                spec: read_spec(&mut r)?,
                index: snap::read_u64(&mut r)?,
            },
            3 => Request::Sweep {
                spec: read_spec(&mut r)?,
                jobs: snap::read_u64(&mut r)?,
            },
            4 => Request::Stats,
            5 => Request::Shutdown,
            t => return Err(snap::invalid(format!("unknown request tag {t}"))),
        };
        if !r.is_empty() {
            return Err(snap::invalid("trailing bytes after the request"));
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes the response as one frame body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Vec::new();
        let r: io::Result<()> = (|| {
            match self {
                Response::Pong { protocol } => {
                    w.write_all(&[0x80])?;
                    snap::write_u64(&mut w, *protocol)?;
                }
                Response::Job {
                    index,
                    key,
                    value,
                    feasible,
                    rounds,
                    micros,
                } => {
                    w.write_all(&[0x81])?;
                    snap::write_u64(&mut w, *index)?;
                    snap::write_str(&mut w, key)?;
                    snap::write_u64(&mut w, *value)?;
                    snap::write_bool(&mut w, *feasible)?;
                    snap::write_u64(&mut w, *rounds)?;
                    snap::write_u64(&mut w, *micros)?;
                }
                Response::Summary {
                    jobs,
                    groups,
                    backends,
                    cache_hits,
                    cache_misses,
                    wall_micros,
                } => {
                    w.write_all(&[0x82])?;
                    for v in [
                        jobs,
                        groups,
                        backends,
                        cache_hits,
                        cache_misses,
                        wall_micros,
                    ] {
                        snap::write_u64(&mut w, *v)?;
                    }
                }
                Response::Stats {
                    requests,
                    jobs_solved,
                    cache_families,
                    cache_entries,
                    cache_hits,
                    cache_misses,
                    metrics,
                } => {
                    w.write_all(&[0x83])?;
                    for v in [
                        requests,
                        jobs_solved,
                        cache_families,
                        cache_entries,
                        cache_hits,
                        cache_misses,
                    ] {
                        snap::write_u64(&mut w, *v)?;
                    }
                    snap::write_bytes(&mut w, &metrics.to_bytes())?;
                }
                Response::Error { message } => {
                    w.write_all(&[0x84])?;
                    snap::write_str(&mut w, message)?;
                }
                Response::ShutdownAck => w.write_all(&[0x85])?,
                Response::Busy => w.write_all(&[0x86])?,
            }
            Ok(())
        })();
        // dapc-allow(panic): writing to a Vec cannot fail
        r.expect("writing to a Vec cannot fail");
        w
    }

    /// Decodes one frame body (same contract as [`Request::from_bytes`]).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] or
    /// [`io::ErrorKind::UnexpectedEof`].
    pub fn from_bytes(body: &[u8]) -> io::Result<Self> {
        let mut r = body;
        let resp = match snap::read_u8(&mut r)? {
            0x80 => Response::Pong {
                protocol: snap::read_u64(&mut r)?,
            },
            0x81 => Response::Job {
                index: snap::read_u64(&mut r)?,
                key: snap::read_str(&mut r, "job key")?,
                value: snap::read_u64(&mut r)?,
                feasible: snap::read_bool(&mut r, "feasible")?,
                rounds: snap::read_u64(&mut r)?,
                micros: snap::read_u64(&mut r)?,
            },
            0x82 => Response::Summary {
                jobs: snap::read_u64(&mut r)?,
                groups: snap::read_u64(&mut r)?,
                backends: snap::read_u64(&mut r)?,
                cache_hits: snap::read_u64(&mut r)?,
                cache_misses: snap::read_u64(&mut r)?,
                wall_micros: snap::read_u64(&mut r)?,
            },
            0x83 => Response::Stats {
                requests: snap::read_u64(&mut r)?,
                jobs_solved: snap::read_u64(&mut r)?,
                cache_families: snap::read_u64(&mut r)?,
                cache_entries: snap::read_u64(&mut r)?,
                cache_hits: snap::read_u64(&mut r)?,
                cache_misses: snap::read_u64(&mut r)?,
                metrics: read_metrics(&mut r)?,
            },
            0x84 => Response::Error {
                message: snap::read_str(&mut r, "error message")?,
            },
            0x85 => Response::ShutdownAck,
            0x86 => Response::Busy,
            t => return Err(snap::invalid(format!("unknown response tag {t}"))),
        };
        if !r.is_empty() {
            return Err(snap::invalid("trailing bytes after the response"));
        }
        Ok(resp)
    }
}

/// Decodes an embedded metrics snapshot with the same all-or-nothing
/// discipline as [`read_spec`]: the length-prefixed bytes must parse as
/// a complete canonical snapshot with nothing left over.
fn read_metrics(r: &mut impl Read) -> io::Result<MetricsSnapshot> {
    let bytes = snap::read_bytes(r, "embedded metrics snapshot")?;
    MetricsSnapshot::from_bytes(&bytes)
}

fn read_spec(r: &mut impl Read) -> io::Result<CorpusSpec> {
    let bytes = snap::read_bytes(r, "embedded spec")?;
    let mut slice = bytes.as_slice();
    let spec = CorpusSpec::load_from(&mut slice)?;
    if !slice.is_empty() {
        return Err(snap::invalid("trailing bytes after the embedded spec"));
    }
    Ok(spec)
}
