//! Process exit codes of the orchestration binaries.
//!
//! A coordinator supervising worker processes sees nothing but an exit
//! status, so the status has to carry the triage: *retry this worker*
//! (transient I/O, a crash, a straggler we killed) versus *stop the
//! sweep* (the input itself is bad and every retry would fail the same
//! way). Both `dapc-serve worker` and the `tables` shard runner speak
//! this vocabulary.

use std::io;

/// Success.
pub const EXIT_OK: i32 = 0;
/// Bad command line or spec tokens — retrying cannot help.
pub const EXIT_USAGE: i32 = 2;
/// A transient I/O failure (filesystem, pipe, socket) — retryable.
pub const EXIT_IO: i32 = 3;
/// A snapshot, checkpoint or spec file failed to parse — the input is
/// corrupt, so retrying against the same file cannot help.
pub const EXIT_BAD_SNAPSHOT: i32 = 4;
/// A solve panicked. Solves are deterministic in their job key, so a
/// retry would panic identically — not retryable.
pub const EXIT_SOLVE_PANIC: i32 = 5;

/// Maps an `io::Error` from loading or emitting snapshots to the exit
/// code a worker should die with: parse failures ([`io::ErrorKind::InvalidData`],
/// and [`io::ErrorKind::UnexpectedEof`] — truncation *is* corruption in
/// the all-or-nothing snapshot discipline) are [`EXIT_BAD_SNAPSHOT`];
/// everything else is transient [`EXIT_IO`].
pub fn classify(err: &io::Error) -> i32 {
    match err.kind() {
        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => EXIT_BAD_SNAPSHOT,
        _ => EXIT_IO,
    }
}

/// Whether a worker that died with `code` is worth respawning: signal
/// deaths (`None` — a crash or an injected kill) and transient I/O are;
/// deterministic failures (usage, corrupt input, a panicking solve) are
/// not.
pub fn is_retryable(code: Option<i32>) -> bool {
    match code {
        None => true,
        Some(EXIT_IO) => true,
        Some(EXIT_OK) | Some(EXIT_USAGE) | Some(EXIT_BAD_SNAPSHOT) | Some(EXIT_SOLVE_PANIC) => {
            false
        }
        // Unknown codes (e.g. the OS's own 101 on an uncaught panic in a
        // worker that never reached main's mapping) get one benefit of
        // the doubt; the attempt cap bounds the damage.
        Some(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_parse_failures_map_to_bad_snapshot() {
        for kind in [io::ErrorKind::InvalidData, io::ErrorKind::UnexpectedEof] {
            assert_eq!(classify(&io::Error::new(kind, "boom")), EXIT_BAD_SNAPSHOT);
        }
    }

    #[test]
    fn transient_io_maps_to_io() {
        for kind in [
            io::ErrorKind::NotFound,
            io::ErrorKind::PermissionDenied,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::WouldBlock,
            io::ErrorKind::Other,
        ] {
            assert_eq!(classify(&io::Error::new(kind, "boom")), EXIT_IO);
        }
    }

    #[test]
    fn retry_policy_matches_determinism() {
        assert!(is_retryable(None), "signal death is retryable");
        assert!(is_retryable(Some(EXIT_IO)));
        assert!(is_retryable(Some(101)), "unknown codes get one chance");
        assert!(!is_retryable(Some(EXIT_OK)));
        assert!(!is_retryable(Some(EXIT_USAGE)));
        assert!(!is_retryable(Some(EXIT_BAD_SNAPSHOT)));
        assert!(!is_retryable(Some(EXIT_SOLVE_PANIC)));
    }

    #[test]
    fn codes_are_distinct() {
        let codes = [
            EXIT_OK,
            EXIT_USAGE,
            EXIT_IO,
            EXIT_BAD_SNAPSHOT,
            EXIT_SOLVE_PANIC,
        ];
        for (i, a) in codes.iter().enumerate() {
            for b in &codes[..i] {
                assert_ne!(a, b);
            }
        }
    }
}
