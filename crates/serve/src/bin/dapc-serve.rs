//! The `dapc-serve` binary: orchestrated sweeps, shard workers, and the
//! persistent solve daemon.
//!
//! ```text
//! dapc-serve sweep  --dir DIR [--workers N] [--unit N] [--jobs N]
//!                   [--max-attempts N] [--timeout-secs S]
//!                   [--inject-kill K] [--out PATH] SPEC...
//! dapc-serve worker --dir DIR --range A..B [--jobs N] [--warm PATH]
//!                   [--self-destruct-after K]
//! dapc-serve daemon --socket PATH [--metrics PATH] [--threads N]
//!                   [--queue N] [--deadline-ms MS]
//! dapc-serve ping|stats|shutdown --socket PATH
//! dapc-serve client-sweep --socket PATH [--jobs N] [--retries N] SPEC...
//! ```
//!
//! SPEC tokens are `name=problem:graph` instances plus `@backends=`,
//! `@eps=`, `@seeds=A..B`, `@ensemble=` grid settings — see
//! [`CorpusSpec::parse_args`]. Exit codes follow [`dapc_serve::exit`]:
//! 0 ok, 2 usage, 3 transient I/O, 4 corrupt snapshot/spec bytes,
//! 5 solve panic.

#![forbid(unsafe_code)]

use dapc_serve::{client, exit, CorpusSpec, Daemon, DaemonConfig, SweepConfig, WorkerOptions};
use std::io::{self, Write};
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match dispatch(&args) {
        Ok(()) => exit::EXIT_OK,
        Err(CliError::Usage(msg)) => {
            eprintln!("dapc-serve: {msg}");
            exit::EXIT_USAGE
        }
        Err(CliError::Io(e)) => {
            eprintln!("dapc-serve: {e}");
            exit::classify(&e)
        }
    };
    std::process::exit(code);
}

enum CliError {
    Usage(String),
    Io(io::Error),
}

impl From<io::Error> for CliError {
    fn from(e: io::Error) -> Self {
        CliError::Io(e)
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

fn dispatch(args: &[String]) -> Result<(), CliError> {
    let (cmd, rest) = args.split_first().ok_or_else(|| {
        usage("missing subcommand (sweep/worker/daemon/ping/stats/shutdown/client-sweep)")
    })?;
    match cmd.as_str() {
        "sweep" => cmd_sweep(rest),
        "worker" => cmd_worker(rest),
        "daemon" => cmd_daemon(rest),
        "ping" => cmd_ping(rest),
        "stats" => cmd_stats(rest),
        "shutdown" => cmd_shutdown(rest),
        "client-sweep" => cmd_client_sweep(rest),
        other => Err(usage(format!("unknown subcommand {other:?}"))),
    }
}

/// Hand-rolled flag walker: collects `--flag value` pairs it knows and
/// returns the positional leftovers.
struct Flags<'a> {
    args: &'a [String],
    cursor: usize,
}

impl<'a> Flags<'a> {
    fn new(args: &'a [String]) -> Self {
        Flags { args, cursor: 0 }
    }

    fn next_flag(&mut self) -> Option<&'a str> {
        let a = self.args.get(self.cursor)?;
        if a.starts_with("--") {
            self.cursor += 1;
            Some(a)
        } else {
            None
        }
    }

    fn value(&mut self, flag: &str) -> Result<&'a str, CliError> {
        let v = self
            .args
            .get(self.cursor)
            .ok_or_else(|| usage(format!("{flag} needs a value")))?;
        self.cursor += 1;
        Ok(v)
    }

    fn positionals(&self) -> &'a [String] {
        &self.args[self.cursor..]
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, CliError> {
    v.parse()
        .map_err(|_| usage(format!("bad value {v:?} for {flag}")))
}

fn parse_range(v: &str) -> Result<Range<usize>, CliError> {
    let (a, b) = v
        .split_once("..")
        .ok_or_else(|| usage(format!("expected A..B, got {v:?}")))?;
    Ok(parse_num::<usize>("--range", a)?..parse_num::<usize>("--range", b)?)
}

fn parse_spec(tokens: &[String]) -> Result<CorpusSpec, CliError> {
    if tokens.is_empty() {
        return Err(usage(
            "missing spec tokens (e.g. ring=mis:cycle:12 @seeds=0..4)",
        ));
    }
    CorpusSpec::parse_args(tokens).map_err(|e| usage(format!("bad spec: {e}")))
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let mut dir: Option<PathBuf> = None;
    let mut cfg = SweepConfig::default();
    let mut jobs = 1usize;
    let mut inject_kill: Option<usize> = None;
    let mut out: Option<PathBuf> = None;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--dir" => dir = Some(PathBuf::from(flags.value(flag)?)),
            "--workers" => cfg.workers = parse_num(flag, flags.value(flag)?)?,
            "--unit" => cfg.unit = parse_num(flag, flags.value(flag)?)?,
            "--jobs" => jobs = parse_num(flag, flags.value(flag)?)?,
            "--max-attempts" => cfg.max_attempts = parse_num(flag, flags.value(flag)?)?,
            "--timeout-secs" => {
                cfg.timeout = Some(Duration::from_secs(parse_num(flag, flags.value(flag)?)?))
            }
            "--inject-kill" => inject_kill = Some(parse_num(flag, flags.value(flag)?)?),
            "--out" => out = Some(PathBuf::from(flags.value(flag)?)),
            other => return Err(usage(format!("unknown sweep flag {other}"))),
        }
    }
    let dir = dir.ok_or_else(|| usage("sweep needs --dir"))?;
    let spec = parse_spec(flags.positionals())?;
    let exe = std::env::current_exe()?;
    // The injected kill (fault-drill mode) arms exactly one worker: the
    // first spawn aborts after K solved jobs, every retry runs clean.
    let mut armed = inject_kill;
    let outcome = dapc_serve::orchestrate_sweep(&dir, &spec, &cfg, |range, attempt| {
        let mut cmd = Command::new(&exe);
        cmd.arg("worker")
            .arg("--dir")
            .arg(&dir)
            .arg("--range")
            .arg(format!("{}..{}", range.start, range.end))
            .arg("--jobs")
            .arg(jobs.to_string())
            // Every (range, attempt) pair gets its own chaos salt: a
            // seeded fault plan cannot replay the same fault against
            // every retry (which would turn bounded faults into
            // livelock), nor fire in lockstep across sibling workers.
            .env(
                dapc_chaos::SALT_ENV,
                (attempt as u64 * 0x1_0000 + range.start as u64).to_string(),
            )
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        if let Some(k) = armed.take() {
            cmd.arg("--self-destruct-after").arg(k.to_string());
        }
        cmd.spawn()
    })?;
    let rendered = render_deterministic(&outcome.report);
    if let Some(out) = out {
        std::fs::write(out, &rendered)?;
    }
    print!("{rendered}");
    println!(
        "# telemetry: {} jobs ({} resumed from checkpoints, {} solved), \
         {} spawns, {} retries, {} timeouts, {} torn parts ignored \
         ({} quarantined), {} stale tmp collected, wall {:?}",
        outcome.corpus_jobs,
        outcome.resumed_jobs,
        outcome.solved_jobs,
        outcome.stats.spawns,
        outcome.stats.retries,
        outcome.stats.timeouts,
        outcome.skipped_parts,
        outcome.quarantined_parts,
        outcome.collected_tmp,
        outcome.report.wall,
    );
    Ok(())
}

fn cmd_worker(args: &[String]) -> Result<(), CliError> {
    let mut dir: Option<PathBuf> = None;
    let mut range: Option<Range<usize>> = None;
    let mut opts = WorkerOptions::default();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--dir" => dir = Some(PathBuf::from(flags.value(flag)?)),
            "--range" => range = Some(parse_range(flags.value(flag)?)?),
            "--jobs" => opts.jobs = parse_num(flag, flags.value(flag)?)?,
            "--warm" => opts.warm = Some(PathBuf::from(flags.value(flag)?)),
            "--self-destruct-after" => {
                opts.self_destruct_after = Some(parse_num(flag, flags.value(flag)?)?)
            }
            other => return Err(usage(format!("unknown worker flag {other}"))),
        }
    }
    if !flags.positionals().is_empty() {
        return Err(usage("worker takes no positional arguments"));
    }
    let dir = dir.ok_or_else(|| usage("worker needs --dir"))?;
    let range = range.ok_or_else(|| usage("worker needs --range A..B"))?;
    // A panicking solve must exit with its own distinct code, not the
    // runtime's default panic status.
    let outcome = std::panic::catch_unwind(move || dapc_serve::run_worker(&dir, range, &opts));
    match outcome {
        Ok(Ok(summary)) => {
            println!(
                "worker done: {} units solved ({} jobs), {} units resumed ({} jobs), {} prep entries warmed",
                summary.solved_units,
                summary.solved_jobs,
                summary.skipped_units,
                summary.resumed_jobs,
                summary.warmed_entries,
            );
            Ok(())
        }
        Ok(Err(e)) => Err(e.into()),
        Err(_panic) => std::process::exit(exit::EXIT_SOLVE_PANIC),
    }
}

fn cmd_daemon(args: &[String]) -> Result<(), CliError> {
    let mut socket: Option<PathBuf> = None;
    let mut metrics: Option<PathBuf> = None;
    let mut cfg = DaemonConfig::default();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--socket" => socket = Some(PathBuf::from(flags.value(flag)?)),
            "--metrics" => metrics = Some(PathBuf::from(flags.value(flag)?)),
            "--threads" => cfg.threads = parse_num(flag, flags.value(flag)?)?,
            "--queue" => cfg.queue = parse_num(flag, flags.value(flag)?)?,
            "--deadline-ms" => {
                cfg.deadline = Some(Duration::from_millis(parse_num(flag, flags.value(flag)?)?))
            }
            other => return Err(usage(format!("unknown daemon flag {other}"))),
        }
    }
    let socket = socket.ok_or_else(|| usage("daemon needs --socket PATH"))?;
    // --metrics turns observability on and keeps a JSON-lines snapshot
    // of the registry fresh on disk while the daemon serves.
    let _flush = metrics.map(|path| {
        dapc_obs::set_enabled(true);
        dapc_obs::PeriodicFlush::start(path, Duration::from_millis(500))
    });
    let daemon = Daemon::bind_with(&socket, cfg)?;
    eprintln!("dapc-serve daemon listening on {}", socket.display());
    daemon.run().map_err(Into::into)
}

fn socket_flag(args: &[String]) -> Result<PathBuf, CliError> {
    let mut socket: Option<PathBuf> = None;
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--socket" => socket = Some(PathBuf::from(flags.value(flag)?)),
            other => return Err(usage(format!("unknown flag {other}"))),
        }
    }
    socket.ok_or_else(|| usage("needs --socket PATH"))
}

fn cmd_ping(args: &[String]) -> Result<(), CliError> {
    let protocol = client::ping(&socket_flag(args)?)?;
    println!("pong (protocol {protocol})");
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), CliError> {
    let resp = client::stats(&socket_flag(args)?)?;
    match client::render_stats(&resp) {
        Some(rendered) => {
            print!("{rendered}");
            Ok(())
        }
        None => Err(io::Error::other(format!("unexpected response {resp:?}")).into()),
    }
}

fn cmd_shutdown(args: &[String]) -> Result<(), CliError> {
    client::shutdown(&socket_flag(args)?)?;
    println!("daemon shut down");
    Ok(())
}

fn cmd_client_sweep(args: &[String]) -> Result<(), CliError> {
    let mut socket: Option<PathBuf> = None;
    let mut jobs = 1u64;
    let mut policy = client::RetryPolicy::default();
    let mut flags = Flags::new(args);
    while let Some(flag) = flags.next_flag() {
        match flag {
            "--socket" => socket = Some(PathBuf::from(flags.value(flag)?)),
            "--jobs" => jobs = parse_num(flag, flags.value(flag)?)?,
            "--retries" => policy.attempts = parse_num(flag, flags.value(flag)?)?,
            other => return Err(usage(format!("unknown client-sweep flag {other}"))),
        }
    }
    let socket = socket.ok_or_else(|| usage("client-sweep needs --socket"))?;
    let spec = parse_spec(flags.positionals())?;
    let stdout = io::stdout();
    let mut lock = stdout.lock();
    let summary = client::sweep_with_retry(&socket, &spec, jobs, &policy, |job| {
        let _ = writeln!(
            lock,
            "{:>6}  {:<40} value {:>8}  feasible {}  rounds {:>6}",
            job.index, job.key, job.value, job.feasible, job.rounds
        );
    })?;
    println!(
        "swept {} jobs into {} groups / {} backends  (daemon cache: {} hits, {} misses)",
        summary.jobs, summary.groups, summary.backends, summary.cache_hits, summary.cache_misses
    );
    Ok(())
}

/// Renders only the deterministic columns of a sweep report — the same
/// bytes at any worker count, with any kill schedule, resumed or not.
/// Timing and cache telemetry go to the separate `# telemetry` line.
fn render_deterministic(report: &dapc_runtime::StreamReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<24} {:<12} {:>5} {:>5} {:>8} {:>8} {:>10} {:>10} {:>10} {:>6}",
        "instance", "backend", "eps", "jobs", "min", "max", "mean", "ratio", "rounds", "ok"
    );
    for g in &report.groups {
        let ratio = g.mean_ratio.map_or("-".to_string(), |r| format!("{r:.4}"));
        let _ = writeln!(
            out,
            "{:<24} {:<12} {:>5} {:>5} {:>8} {:>8} {:>10.2} {:>10} {:>10.1} {:>6}",
            g.instance,
            g.backend,
            g.eps,
            g.jobs,
            g.min_value,
            g.max_value,
            g.mean_value,
            ratio,
            g.mean_rounds,
            if g.feasible { "yes" } else { "NO" },
        );
    }
    let _ = writeln!(out, "--");
    for b in &report.backends {
        let ratio = b.mean_ratio.map_or("-".to_string(), |r| format!("{r:.4}"));
        let _ = writeln!(
            out,
            "{:<24} {:<12} {:>5} {:>5} {:>8} {:>8} {:>10} {:>10} {:>10.1} {:>6}",
            "(all)",
            b.backend,
            "-",
            b.jobs,
            "-",
            "-",
            "-",
            ratio,
            b.mean_rounds,
            if b.feasible { "yes" } else { "NO" },
        );
    }
    out
}
