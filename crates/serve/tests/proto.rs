//! Hardening of the daemon wire protocol: every message round-trips,
//! truncation at any byte is an `Err` (at the frame layer *and* the
//! message layer), hostile length fields are rejected before any
//! allocation, and unknown tags are errors rather than skipped.

use dapc_obs::{MetricsSnapshot, SnapshotEntry};
use dapc_serve::proto::{read_frame, write_frame, Request, Response, MAX_FRAME, PROTOCOL_VERSION};
use dapc_serve::CorpusSpec;
use std::io::{self, Write};

fn demo_spec() -> CorpusSpec {
    CorpusSpec::parse_args([
        "ring=mis:cycle:12",
        "@backends=greedy,bnb",
        "@eps=0.3",
        "@seeds=0..2",
    ])
    .expect("demo spec parses")
}

/// A canonical (name-sorted) snapshot exercising all three metric
/// kinds, built without touching the process-global registry.
fn demo_metrics() -> MetricsSnapshot {
    MetricsSnapshot {
        entries: vec![
            SnapshotEntry::Histogram {
                name: "serve.daemon.ping_micros".into(),
                count: 2,
                sum: 9,
                p50: 3,
                p90: 7,
                p99: 7,
                buckets: vec![(2, 1), (3, 1)],
            },
            SnapshotEntry::Counter {
                name: "serve.daemon.requests".into(),
                value: 10,
            },
            SnapshotEntry::Gauge {
                name: "serve.daemon.resident_bytes".into(),
                value: 4096,
            },
        ],
    }
}

fn every_request() -> Vec<Request> {
    let spec = demo_spec();
    vec![
        Request::Ping,
        Request::Solve {
            spec: spec.clone(),
            index: 3,
        },
        Request::Sweep { spec, jobs: 4 },
        Request::Stats,
        Request::Shutdown,
    ]
}

fn every_response() -> Vec<Response> {
    vec![
        Response::Pong {
            protocol: PROTOCOL_VERSION,
        },
        Response::Job {
            index: 7,
            key: "ring/greedy eps=0.3 seed=1".into(),
            value: 6,
            feasible: true,
            rounds: 12,
            micros: 345,
        },
        Response::Summary {
            jobs: 4,
            groups: 2,
            backends: 2,
            cache_hits: 3,
            cache_misses: 1,
            wall_micros: 999,
        },
        Response::Stats {
            requests: 10,
            jobs_solved: 40,
            cache_families: 1,
            cache_entries: 5,
            cache_hits: 30,
            cache_misses: 5,
            metrics: demo_metrics(),
        },
        Response::Stats {
            requests: 0,
            jobs_solved: 0,
            cache_families: 0,
            cache_entries: 0,
            cache_hits: 0,
            cache_misses: 0,
            metrics: MetricsSnapshot::default(),
        },
        Response::Error {
            message: "bad request: nope".into(),
        },
        Response::ShutdownAck,
        Response::Busy,
    ]
}

#[test]
fn every_message_round_trips() {
    for req in every_request() {
        let bytes = req.to_bytes();
        assert_eq!(Request::from_bytes(&bytes).expect("round trip"), req);
    }
    for resp in every_response() {
        let bytes = resp.to_bytes();
        assert_eq!(Response::from_bytes(&bytes).expect("round trip"), resp);
    }
}

#[test]
fn truncated_message_bodies_error_at_every_cut() {
    for req in every_request() {
        let bytes = req.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Request::from_bytes(&bytes[..cut]).is_err(),
                "{req:?}: prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }
    for resp in every_response() {
        let bytes = resp.to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Response::from_bytes(&bytes[..cut]).is_err(),
                "{resp:?}: prefix of {cut}/{} bytes must not decode",
                bytes.len()
            );
        }
    }
}

#[test]
fn trailing_bytes_after_a_message_error() {
    for req in every_request() {
        let mut bytes = req.to_bytes();
        bytes.push(0);
        let err = Request::from_bytes(&bytes).expect_err("padded request must fail");
        assert!(err.to_string().contains("trailing"), "{req:?}: {err}");
    }
    for resp in every_response() {
        let mut bytes = resp.to_bytes();
        bytes.push(0);
        let err = Response::from_bytes(&bytes).expect_err("padded response must fail");
        assert!(err.to_string().contains("trailing"), "{resp:?}: {err}");
    }
}

#[test]
fn frame_truncation_at_every_byte_is_an_error() {
    let body = Request::Sweep {
        spec: demo_spec(),
        jobs: 2,
    }
    .to_bytes();
    let mut frame = Vec::new();
    write_frame(&mut frame, &body).expect("framing a Vec");
    assert_eq!(frame.len(), 4 + body.len());

    // Cut 0 is the one legal close: the peer hung up *between* frames.
    assert!(read_frame(&mut &frame[..0]).expect("clean close").is_none());
    for cut in 1..frame.len() {
        let err = read_frame(&mut &frame[..cut])
            .expect_err(&format!("frame prefix of {cut} bytes must not read"));
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut {cut}: {err}");
    }
    // The whole frame reads back exactly once, then a clean close.
    let mut stream = frame.as_slice();
    assert_eq!(
        read_frame(&mut stream).expect("full frame").as_deref(),
        Some(body.as_slice())
    );
    assert!(read_frame(&mut stream).expect("clean close").is_none());
}

#[test]
fn back_to_back_frames_read_in_order() {
    let ping = Request::Ping.to_bytes();
    let stats = Request::Stats.to_bytes();
    let mut wire = Vec::new();
    write_frame(&mut wire, &ping).unwrap();
    write_frame(&mut wire, &stats).unwrap();
    let mut stream = wire.as_slice();
    assert_eq!(
        read_frame(&mut stream).unwrap().as_deref(),
        Some(ping.as_slice())
    );
    assert_eq!(
        read_frame(&mut stream).unwrap().as_deref(),
        Some(stats.as_slice())
    );
    assert!(read_frame(&mut stream).unwrap().is_none());
}

#[test]
fn oversized_length_fields_are_rejected_before_any_allocation() {
    // A hostile header that promises more than the cap: the reader must
    // refuse on the length field alone — there are no body bytes to
    // read, and no buffer may be sized from the claim.
    let mut wire = Vec::new();
    wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    let err = read_frame(&mut wire.as_slice()).expect_err("oversized frame must be refused");
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("exceeds"), "{err}");

    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    assert!(read_frame(&mut wire.as_slice()).is_err());

    // The writer enforces the same cap.
    let huge = vec![0u8; MAX_FRAME as usize + 1];
    let mut sink = Vec::new();
    let err = write_frame(&mut sink, &huge).expect_err("oversized body must be refused");
    assert!(err.to_string().contains("exceeds the cap"), "{err}");
    assert!(
        sink.is_empty(),
        "nothing may be written before the cap check"
    );
}

#[test]
fn a_frame_at_the_cap_still_passes() {
    let body = vec![0x42u8; MAX_FRAME as usize];
    let mut wire = Vec::new();
    write_frame(&mut wire, &body).expect("cap-sized frame writes");
    assert_eq!(
        read_frame(&mut wire.as_slice())
            .expect("cap-sized frame reads")
            .as_deref(),
        Some(body.as_slice())
    );
}

#[test]
fn unknown_tags_are_errors_not_extensions() {
    for tag in [0u8, 6, 0x42, 0xff] {
        let err = Request::from_bytes(&[tag]).expect_err("unknown request tag must fail");
        assert!(
            err.to_string().contains("unknown request tag"),
            "tag {tag}: {err}"
        );
    }
    for tag in [0u8, 0x7f, 0x87, 0xff] {
        let err = Response::from_bytes(&[tag]).expect_err("unknown response tag must fail");
        assert!(
            err.to_string().contains("unknown response tag"),
            "tag {tag}: {err}"
        );
    }
}

#[test]
fn an_embedded_spec_with_trailing_junk_is_rejected() {
    // Hand-build a Solve whose length-prefixed spec field carries extra
    // bytes after the spec: the envelope length is consistent, so only
    // the nested trailing check can catch it.
    let mut spec_field = demo_spec().to_bytes();
    spec_field.push(0xAA);
    let mut body = Vec::new();
    body.write_all(&[2]).unwrap();
    body.write_all(&(spec_field.len() as u64).to_le_bytes())
        .unwrap();
    body.write_all(&spec_field).unwrap();
    body.write_all(&0u64.to_le_bytes()).unwrap();
    let err = Request::from_bytes(&body).expect_err("padded embedded spec must fail");
    assert!(
        err.to_string()
            .contains("trailing bytes after the embedded spec"),
        "{err}"
    );
}

#[test]
fn an_embedded_metrics_snapshot_with_junk_is_rejected() {
    // Same attack as the spec variant: the envelope length is
    // consistent, so only the snapshot parser's own strictness can
    // reject bytes after (or instead of) the canonical lines.
    for tail in [&b"\n"[..], b"{}", b"x"] {
        let mut metrics_field = demo_metrics().to_bytes();
        metrics_field.extend_from_slice(tail);
        let mut body = Vec::new();
        body.write_all(&[0x83]).unwrap();
        for v in [10u64, 40, 1, 5, 30, 5] {
            body.write_all(&v.to_le_bytes()).unwrap();
        }
        body.write_all(&(metrics_field.len() as u64).to_le_bytes())
            .unwrap();
        body.write_all(&metrics_field).unwrap();
        assert!(
            Response::from_bytes(&body).is_err(),
            "metrics field padded with {tail:?} must fail"
        );
    }
}

#[test]
fn an_embedded_spec_that_fails_validation_is_rejected_at_decode() {
    // A syntactically intact request whose spec names an unknown backend
    // must die in `from_bytes`, before any handler sees it.
    let mut spec = demo_spec();
    spec.backends = vec!["no-such-backend".into()];
    let mut spec_field = Vec::new();
    spec.save_to(&mut spec_field).unwrap();
    let mut body = Vec::new();
    body.write_all(&[3]).unwrap();
    body.write_all(&(spec_field.len() as u64).to_le_bytes())
        .unwrap();
    body.write_all(&spec_field).unwrap();
    body.write_all(&1u64.to_le_bytes()).unwrap();
    let err = Request::from_bytes(&body).expect_err("invalid embedded spec must fail");
    assert!(err.to_string().contains("unknown backend"), "{err}");
}
