//! The hardened daemon under concurrent load: parallel clients stream
//! interleaved sweeps without mixing frames, the bounded queue sheds
//! load with in-band `Busy`, deadlines kill stuck connections without
//! killing the daemon, shutdown drains in-flight requests, the retrying
//! client rides out a daemon that is not up yet, and stale socket files
//! are replaced while live ones are protected.

use dapc_local::RoundCost;
use dapc_runtime::{solve_many, RuntimeConfig};
use dapc_serve::client::{self, JobUpdate, RetryPolicy};
use dapc_serve::proto::{read_frame, Response};
use dapc_serve::{CorpusSpec, Daemon, DaemonConfig};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

fn demo_spec() -> CorpusSpec {
    CorpusSpec::parse_args([
        "ring=mis:cycle:12",
        "@backends=greedy,three-phase",
        "@eps=0.3",
        "@seeds=0..2",
    ])
    .expect("demo spec parses")
}

/// A corpus big enough that its sweep reliably outlives a zero deadline
/// and the watchdog's first scan, but still finishes in well under a
/// second once the daemon lets it run to completion off-connection.
fn slow_spec() -> CorpusSpec {
    CorpusSpec::parse_args([
        "big=mis:cycle:512",
        "@backends=three-phase",
        "@eps=0.1",
        "@seeds=0..64",
    ])
    .expect("slow spec parses")
}

fn scratch_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dapc-concurrent-{tag}-{}.sock", std::process::id()))
}

/// The headline concurrency contract: N clients sweeping at once each
/// see their own stream in canonical job order, every stream matches
/// the single-process solver byte for byte, and the resident cache
/// accumulates hits across all of them.
#[test]
fn concurrent_clients_get_canonical_isolated_streams() {
    let socket = scratch_socket("fanout");
    let daemon = Daemon::bind_with(
        &socket,
        DaemonConfig {
            threads: 4,
            queue: 16,
            deadline: None,
        },
    )
    .expect("bind");
    let server = std::thread::spawn(move || daemon.run());

    let spec = demo_spec();
    let reference = solve_many(&spec.build(), &RuntimeConfig::new());
    let clients: Vec<_> = (0..4)
        .map(|_| {
            let socket = socket.clone();
            let spec = spec.clone();
            std::thread::spawn(move || {
                let mut streamed: Vec<JobUpdate> = Vec::new();
                let summary = client::sweep(&socket, &spec, 2, |j| streamed.push(j))
                    .expect("concurrent sweep");
                (streamed, summary)
            })
        })
        .collect();
    for handle in clients {
        let (streamed, summary) = handle.join().expect("client thread");
        assert_eq!(streamed.len(), reference.results.len());
        assert_eq!(summary.jobs, reference.results.len() as u64);
        for (i, (got, want)) in streamed.iter().zip(&reference.results).enumerate() {
            assert_eq!(got.index, i as u64, "stream must be in canonical order");
            assert_eq!(got.key, want.key.to_string(), "job {i}");
            assert_eq!(got.value, want.report.value, "job {i}");
            assert_eq!(got.feasible, want.report.feasible(), "job {i}");
            assert_eq!(got.rounds, want.report.rounds() as u64, "job {i}");
        }
    }

    // Four sweeps of the same spec against one resident cache: at most
    // one miss per distinct prep, everything else must have hit.
    match client::stats(&socket).expect("stats") {
        Response::Stats {
            cache_hits,
            cache_misses,
            ..
        } => {
            assert!(
                cache_hits > cache_misses,
                "4 identical sweeps must be hit-dominated (hits {cache_hits}, \
                 misses {cache_misses})"
            );
        }
        other => panic!("expected stats, got {other:?}"),
    }

    client::shutdown(&socket).expect("shutdown");
    server.join().expect("join").expect("clean run");
    assert!(!socket.exists());
}

/// With one handler and a one-slot queue, the third simultaneous
/// connection gets an in-band `Busy` frame — and once capacity frees
/// up, new connections are served again.
#[test]
fn full_queue_answers_busy_in_band() {
    let socket = scratch_socket("busy");
    let daemon = Daemon::bind_with(
        &socket,
        DaemonConfig {
            threads: 1,
            queue: 1,
            deadline: None,
        },
    )
    .expect("bind");
    let server = std::thread::spawn(move || daemon.run());

    // Occupy the only handler with an idle connection, then park a
    // second one in the only queue slot. The sleeps give the acceptor
    // time to route each connection before the next arrives.
    let hog = UnixStream::connect(&socket).expect("hog connects");
    std::thread::sleep(Duration::from_millis(300));
    let parked = UnixStream::connect(&socket).expect("parked connects");
    std::thread::sleep(Duration::from_millis(300));

    let mut shed = UnixStream::connect(&socket).expect("shed connects");
    let body = read_frame(&mut shed)
        .expect("read busy frame")
        .expect("busy frame");
    assert_eq!(
        Response::from_bytes(&body).expect("decode busy"),
        Response::Busy
    );
    // The daemon closes its side after shedding.
    assert!(read_frame(&mut shed).expect("shed close").is_none());

    // Free the handler; the parked connection gets served.
    drop(hog);
    drop(parked);
    std::thread::sleep(Duration::from_millis(300));
    let spec = demo_spec();
    let summary = client::sweep(&socket, &spec, 1, |_| {}).expect("post-busy sweep");
    assert_eq!(summary.jobs, spec.grid_len() as u64);

    client::shutdown(&socket).expect("shutdown");
    server.join().expect("join").expect("clean run");
}

/// A request running past its deadline loses its *connection* — the
/// client sees a retryable stream error — while the daemon survives and
/// keeps serving.
#[test]
fn deadline_kills_the_connection_not_the_daemon() {
    let socket = scratch_socket("deadline");
    let daemon = Daemon::bind_with(
        &socket,
        DaemonConfig {
            threads: 2,
            queue: 16,
            deadline: Some(Duration::ZERO),
        },
    )
    .expect("bind");
    let server = std::thread::spawn(move || daemon.run());

    let err = client::sweep(&socket, &slow_spec(), 1, |_| {})
        .expect_err("a zero deadline must kill the sweep connection");
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::ConnectionReset
                | std::io::ErrorKind::BrokenPipe
        ),
        "deadline kill must surface as a connection-level error, got {err}"
    );

    // The daemon itself is fine: pings (never under deadline) work, and
    // the counters are still reachable.
    client::ping(&socket).expect("ping after deadline kill");
    client::stats(&socket).expect("stats after deadline kill");

    client::shutdown(&socket).expect("shutdown");
    server.join().expect("join").expect("clean run");
}

/// Shutdown drains: a sweep in flight when the shutdown request lands
/// still completes and delivers its full stream before the daemon exits
/// and unlinks the socket.
#[test]
fn shutdown_drains_inflight_sweeps() {
    let socket = scratch_socket("drain");
    let daemon = Daemon::bind_with(
        &socket,
        DaemonConfig {
            threads: 2,
            queue: 16,
            deadline: None,
        },
    )
    .expect("bind");
    let server = std::thread::spawn(move || daemon.run());

    let spec = slow_spec();
    let sweeper = {
        let socket = socket.clone();
        let spec = spec.clone();
        std::thread::spawn(move || {
            let mut n = 0usize;
            client::sweep(&socket, &spec, 1, |_| n += 1).map(|s| (n, s))
        })
    };
    // Land the shutdown while the sweep is (very likely) in flight; the
    // drain contract holds either way.
    std::thread::sleep(Duration::from_millis(30));
    client::shutdown(&socket).expect("shutdown");

    let (streamed, summary) = sweeper
        .join()
        .expect("sweeper thread")
        .expect("in-flight sweep survives shutdown");
    assert_eq!(streamed, spec.grid_len());
    assert_eq!(summary.jobs, spec.grid_len() as u64);

    server.join().expect("join").expect("clean run");
    assert!(!socket.exists(), "socket must be unlinked after the drain");
}

/// The retrying client rides out a daemon that comes up late: the first
/// attempts fail with `ConnectionRefused`/`NotFound`, the backoff holds,
/// and the sweep lands intact once the daemon is listening. Buffered
/// delivery means the job callback only ever sees the winning attempt.
#[test]
fn retrying_client_survives_late_daemon_start() {
    let socket = scratch_socket("retry");
    let spec = demo_spec();
    let reference = solve_many(&spec.build(), &RuntimeConfig::new());

    let starter = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(200));
            let daemon = Daemon::bind(&socket).expect("late bind");
            daemon.run()
        })
    };

    let policy = RetryPolicy {
        attempts: 8,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_millis(400),
    };
    let mut streamed: Vec<JobUpdate> = Vec::new();
    let summary = client::sweep_with_retry(&socket, &spec, 2, &policy, |j| streamed.push(j))
        .expect("retry rides out the late start");
    assert_eq!(summary.jobs, reference.results.len() as u64);
    assert_eq!(streamed.len(), reference.results.len());
    for (i, (got, want)) in streamed.iter().zip(&reference.results).enumerate() {
        assert_eq!(got.index, i as u64);
        assert_eq!(got.value, want.report.value, "job {i}");
    }

    client::shutdown(&socket).expect("shutdown");
    starter.join().expect("join").expect("clean run");
}

/// The backoff schedule is capped exponential, exactly.
#[test]
fn retry_policy_backoff_is_capped_exponential() {
    let policy = RetryPolicy {
        attempts: 6,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_secs(1),
    };
    let delays: Vec<u128> = (0..6).map(|r| policy.delay(r).as_millis()).collect();
    assert_eq!(delays, vec![50, 100, 200, 400, 800, 1000]);
}

/// A dead daemon's leftover socket file is replaced on bind; a live
/// daemon's socket is protected with `AddrInUse`.
#[test]
fn stale_sockets_are_replaced_and_live_ones_protected() {
    let socket = scratch_socket("stale");

    // Fabricate a crash corpse: bind a listener and drop it without
    // unlinking (exactly what SIGKILL leaves behind).
    let corpse = UnixListener::bind(&socket).expect("corpse binds");
    drop(corpse);
    assert!(socket.exists(), "the corpse must leave its socket file");

    let daemon = Daemon::bind(&socket).expect("bind replaces the stale socket");
    let server = std::thread::spawn(move || daemon.run());
    client::ping(&socket).expect("daemon on the reclaimed socket answers");

    // While it lives, a second bind must refuse rather than steal.
    match Daemon::bind(&socket) {
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse),
        Ok(_) => panic!("live socket must be protected"),
    }

    client::shutdown(&socket).expect("shutdown");
    server.join().expect("join").expect("clean run");
}
