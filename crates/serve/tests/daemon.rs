//! End-to-end exercise of the persistent solve daemon over a real Unix
//! socket: streamed sweeps match the single-process solver job by job,
//! the resident prep cache pays off across requests, malformed requests
//! are answered in-band without killing the connection, and shutdown
//! removes the socket.

use dapc_obs::{MetricsSnapshot, SnapshotEntry};
use dapc_runtime::{solve_many, RuntimeConfig};
use dapc_serve::proto::{read_frame, write_frame, Request, Response, PROTOCOL_VERSION};
use dapc_serve::{client, CorpusSpec, Daemon};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

fn demo_spec() -> CorpusSpec {
    CorpusSpec::parse_args([
        "ring=mis:cycle:12",
        "@backends=greedy,three-phase",
        "@eps=0.3",
        "@seeds=0..2",
    ])
    .expect("demo spec parses")
}

/// `dapc-serve stats` output is golden-locked: the legacy counter line,
/// then the snapshot table in canonical (name-sorted) order with names
/// padded to the widest.
#[test]
fn stats_pretty_print_matches_golden_output() {
    let resp = Response::Stats {
        requests: 10,
        jobs_solved: 40,
        cache_families: 1,
        cache_entries: 5,
        cache_hits: 30,
        cache_misses: 5,
        metrics: MetricsSnapshot {
            entries: vec![
                SnapshotEntry::Histogram {
                    name: "exec.injector.depth".into(),
                    count: 3,
                    sum: 4,
                    p50: 1,
                    p90: 2,
                    p99: 2,
                    buckets: vec![(0, 1), (1, 2)],
                },
                SnapshotEntry::Counter {
                    name: "exec.parks".into(),
                    value: 5,
                },
                SnapshotEntry::Counter {
                    name: "exec.steal_failures".into(),
                    value: 1,
                },
                SnapshotEntry::Counter {
                    name: "exec.steals".into(),
                    value: 7,
                },
                SnapshotEntry::Counter {
                    name: "serve.chaos.injected".into(),
                    value: 3,
                },
                SnapshotEntry::Histogram {
                    name: "serve.daemon.ping_micros".into(),
                    count: 2,
                    sum: 9,
                    p50: 3,
                    p90: 7,
                    p99: 7,
                    buckets: vec![(2, 1), (3, 1)],
                },
                SnapshotEntry::Counter {
                    name: "serve.daemon.queue.busy_rejections".into(),
                    value: 2,
                },
                SnapshotEntry::Gauge {
                    name: "serve.daemon.queue.depth".into(),
                    value: 1,
                },
                SnapshotEntry::Counter {
                    name: "serve.daemon.requests".into(),
                    value: 10,
                },
                SnapshotEntry::Gauge {
                    name: "serve.daemon.resident_bytes".into(),
                    value: 4096,
                },
            ],
        },
    };
    let rendered = client::render_stats(&resp).expect("stats renders");
    let golden = "\
requests 10  jobs 40  cache 1 families / 5 entries  hits 30  misses 5
dapc-obs snapshot v1 (10 metrics)
histogram  exec.injector.depth                 count=3 sum=4 p50=1 p90=2 p99=2
counter    exec.parks                          5
counter    exec.steal_failures                 1
counter    exec.steals                         7
counter    serve.chaos.injected                3
histogram  serve.daemon.ping_micros            count=2 sum=9 p50=3 p90=7 p99=7
counter    serve.daemon.queue.busy_rejections  2
gauge      serve.daemon.queue.depth            1
counter    serve.daemon.requests               10
gauge      serve.daemon.resident_bytes         4096
";
    assert_eq!(rendered, golden);

    // Only a Stats response renders.
    assert_eq!(client::render_stats(&Response::ShutdownAck), None);
}

#[test]
fn daemon_round_trip() {
    let socket: PathBuf =
        std::env::temp_dir().join(format!("dapc-serve-daemon-{}.sock", std::process::id()));
    let daemon = Daemon::bind(&socket).expect("bind daemon socket");
    let server = std::thread::spawn(move || daemon.run());

    // Liveness + version agreement.
    assert_eq!(client::ping(&socket).expect("ping"), PROTOCOL_VERSION);

    let spec = demo_spec();
    let jobs = spec.grid_len();
    let reference = solve_many(&spec.build(), &RuntimeConfig::new());

    // A streamed sweep delivers every job in canonical order, and each
    // streamed result matches the single-process solver exactly.
    let mut streamed = Vec::new();
    let summary = client::sweep(&socket, &spec, 2, |job| streamed.push(job)).expect("sweep");
    assert_eq!(streamed.len(), jobs);
    assert_eq!(summary.jobs, jobs as u64);
    assert!(summary.groups > 0 && summary.backends > 0);
    for (i, (got, want)) in streamed.iter().zip(&reference.results).enumerate() {
        assert_eq!(got.index, i as u64);
        assert_eq!(got.key, want.key.to_string(), "job {i}");
        assert_eq!(got.value, want.report.value, "job {i}");
        assert_eq!(got.feasible, want.report.feasible(), "job {i}");
    }
    let first_hits = summary.cache_hits;

    // The cache is resident across requests: re-sweeping the same spec
    // hits the memoised preps it just filled.
    let summary = client::sweep(&socket, &spec, 2, |_| {}).expect("second sweep");
    assert!(
        summary.cache_hits > first_hits,
        "resident cache must accumulate hits across requests \
         (first {first_hits}, second {})",
        summary.cache_hits
    );

    // A single-job solve streams exactly that job.
    let mut single = Vec::new();
    let summary = client::run_streaming(
        &socket,
        &Request::Solve {
            spec: spec.clone(),
            index: 3,
        },
        |job| single.push(job),
    )
    .expect("single solve");
    assert_eq!(summary.jobs, 1);
    assert_eq!(single.len(), 1);
    assert_eq!(single[0].index, 3);
    assert_eq!(single[0].value, reference.results[3].report.value);

    // An out-of-range index is an in-band error, not a dead connection.
    let err = client::run_streaming(
        &socket,
        &Request::Solve {
            spec: spec.clone(),
            index: 10_000,
        },
        |_| {},
    )
    .expect_err("out-of-range index must fail");
    assert!(err.to_string().contains("out of range"), "{err}");

    // A garbage request body earns a Response::Error on the same
    // connection, which then keeps serving.
    let mut raw = UnixStream::connect(&socket).expect("connect raw");
    write_frame(&mut raw, &[0xEE]).expect("send unknown tag");
    let body = read_frame(&mut raw)
        .expect("read error reply")
        .expect("reply frame");
    match Response::from_bytes(&body).expect("decode error reply") {
        Response::Error { message } => {
            assert!(message.contains("unknown request tag"), "{message}")
        }
        other => panic!("expected an in-band error, got {other:?}"),
    }
    write_frame(&mut raw, &Request::Ping.to_bytes()).expect("ping after bad request");
    let body = read_frame(&mut raw)
        .expect("read pong")
        .expect("pong frame");
    assert_eq!(
        Response::from_bytes(&body).expect("decode pong"),
        Response::Pong {
            protocol: PROTOCOL_VERSION
        }
    );
    drop(raw);

    // The counters saw all of it.
    match client::stats(&socket).expect("stats") {
        Response::Stats {
            requests,
            jobs_solved,
            cache_entries,
            cache_hits,
            ..
        } => {
            assert!(requests >= 6, "requests {requests}");
            assert_eq!(jobs_solved, (2 * jobs + 1) as u64);
            assert!(cache_entries > 0);
            assert!(cache_hits > 0);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Shutdown is acknowledged, the accept loop returns, and the socket
    // file is gone.
    client::shutdown(&socket).expect("shutdown");
    server
        .join()
        .expect("daemon thread joins")
        .expect("daemon run returns cleanly");
    assert!(!socket.exists(), "socket file must be removed on shutdown");
}
