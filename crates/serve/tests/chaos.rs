//! The chaos theorem, end to end: under any seeded fault plan a sweep
//! either fails loudly with a triage exit code or renders byte-identical
//! to the fault-free single-process run — plus the housekeeping that
//! makes resume safe around the wreckage (stale tmp collection, corrupt
//! part quarantine).
//!
//! The seeded drills spawn the real `dapc-serve` binary with the
//! `DAPC_CHAOS` environment set, so the fault plan lives in the child
//! processes and never poisons this test binary's own process-global
//! plan.

use dapc_serve::{gc_stale_tmp, scan_parts, QUARANTINE_DIR};
use std::fs;
use std::path::PathBuf;
use std::process::{Command, Stdio};

const EXE: &str = env!("CARGO_BIN_EXE_dapc-serve");

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dapc-chaos-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn spec_tokens() -> Vec<&'static str> {
    vec![
        "ring=mis:cycle:12",
        "cover=vc:grid:3x3",
        "@backends=greedy,three-phase",
        "@eps=0.3",
        "@seeds=0..3",
        "@ensemble=2",
    ]
}

/// Crash leftovers (`.…​.tmp`) are collected on resume; real part files
/// and foreign files are untouched.
#[test]
fn stale_tmp_files_are_collected() {
    let dir = scratch("gc");
    fs::write(dir.join(".part-00000000-00000004.bin.tmp"), b"torn").unwrap();
    fs::write(dir.join(".part-00000004-00000008.bin.tmp"), b"torn").unwrap();
    fs::write(dir.join("part-00000000-00000004.bin"), b"not a tmp").unwrap();
    fs::write(dir.join("notes.txt"), b"keep me").unwrap();

    assert_eq!(gc_stale_tmp(&dir).expect("gc runs"), 2);
    assert!(!dir.join(".part-00000000-00000004.bin.tmp").exists());
    assert!(!dir.join(".part-00000004-00000008.bin.tmp").exists());
    assert!(dir.join("part-00000000-00000004.bin").exists());
    assert!(dir.join("notes.txt").exists());

    // Idempotent: a second pass finds nothing.
    assert_eq!(gc_stale_tmp(&dir).expect("gc reruns"), 0);
}

/// A corrupt part file is moved to `quarantine/` by the scan instead of
/// aborting the resume — and the scan reports it both skipped and
/// quarantined.
#[test]
fn corrupt_part_files_are_quarantined_not_fatal() {
    let dir = scratch("quarantine");
    let name = "part-00000000-00000004.bin";
    fs::write(dir.join(name), b"DAPCPRT\x02 utter garbage").unwrap();

    let scan = scan_parts(&dir, 8).expect("scan survives the corrupt part");
    assert_eq!(scan.skipped, 1);
    assert_eq!(scan.quarantined, 1);
    assert!(scan.parts.is_empty());
    assert!(
        !dir.join(name).exists(),
        "the corrupt part must leave the sweep directory"
    );
    assert!(
        dir.join(QUARANTINE_DIR).join(name).exists(),
        "the corrupt part must land in quarantine for post-mortem"
    );

    // A name collision in the pen gets a numeric suffix, not a clobber.
    fs::write(dir.join(name), b"second corpse").unwrap();
    let scan = scan_parts(&dir, 8).expect("second scan");
    assert_eq!(scan.quarantined, 1);
    assert!(dir.join(QUARANTINE_DIR).join(format!("{name}.1")).exists());
}

/// The headline theorem: for a spread of fault-plan seeds, an
/// orchestrated sweep either exits with a triage code (I/O, corrupt
/// snapshot, solve panic) or succeeds with output byte-identical to the
/// fault-free single-process run.
#[test]
fn seeded_chaos_sweeps_fail_loudly_or_render_identically() {
    let base = scratch("theorem");
    let clean_out = base.join("clean.txt");
    let clean = Command::new(EXE)
        .arg("sweep")
        .args(["--workers", "1", "--unit", "4"])
        .arg("--dir")
        .arg(base.join("clean"))
        .arg("--out")
        .arg(&clean_out)
        .args(spec_tokens())
        .env_remove("DAPC_CHAOS")
        .env_remove("DAPC_CHAOS_SALT")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run fault-free sweep");
    assert!(clean.success(), "fault-free sweep failed: {clean:?}");
    let clean_bytes = fs::read(&clean_out).expect("read fault-free tables");

    let mut survived = 0usize;
    for seed in [1u64, 2, 3, 7, 13, 41] {
        let out = base.join(format!("chaos-{seed}.txt"));
        let status = Command::new(EXE)
            .arg("sweep")
            .args(["--workers", "3", "--unit", "2", "--max-attempts", "4"])
            .arg("--dir")
            .arg(base.join(format!("chaos-{seed}")))
            .arg("--out")
            .arg(&out)
            .args(spec_tokens())
            .env("DAPC_CHAOS", seed.to_string())
            .env_remove("DAPC_CHAOS_SALT")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run seeded chaos sweep");
        match status.code() {
            Some(0) => {
                let chaos_bytes = fs::read(&out).expect("read surviving tables");
                assert_eq!(
                    chaos_bytes, clean_bytes,
                    "seed {seed}: a surviving chaos sweep must render the \
                     fault-free bytes exactly"
                );
                survived += 1;
            }
            Some(code @ 2..=5) => {
                eprintln!("[seed {seed}: failed loudly with exit {code}]");
            }
            other => panic!(
                "seed {seed}: chaos may fail loudly or succeed, \
                 never exit with {other:?}"
            ),
        }
    }
    assert!(
        survived > 0,
        "at least one seeded sweep should retry through its faults \
         (all six dying means the fault budget is mistuned)"
    );
}

/// A seeded single-worker sweep is a pure function of its seed: worker
/// scheduling is sequential, so the same seed twice produces the same
/// exit code, and identical output when it succeeds.
#[test]
fn a_chaos_seed_replays_deterministically() {
    let base = scratch("replay");
    let run = |tag: &str| {
        let out = base.join(format!("{tag}.txt"));
        let status = Command::new(EXE)
            .arg("sweep")
            .args(["--workers", "1", "--unit", "2", "--max-attempts", "4"])
            .arg("--dir")
            .arg(base.join(tag))
            .arg("--out")
            .arg(&out)
            .args(spec_tokens())
            .env("DAPC_CHAOS", "7")
            .env_remove("DAPC_CHAOS_SALT")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .expect("run seeded sweep");
        (status.code(), fs::read(&out).ok())
    };
    let (code_a, out_a) = run("a");
    let (code_b, out_b) = run("b");
    assert_eq!(code_a, code_b, "the same seed must exit the same way");
    if code_a == Some(0) {
        assert_eq!(out_a, out_b, "surviving replays must render identically");
    }
}
