//! End-to-end guarantees of the orchestrated sweep: the merged result is
//! byte-identical to the single-process run at any worker count, under
//! injected worker kills, and across checkpoint/resume boundaries; a
//! corrupt warm-start snapshot surfaces as [`exit::EXIT_BAD_SNAPSHOT`]
//! end-to-end; and a sweep directory refuses a different sweep.
//!
//! Workers here are the real `dapc-serve worker` subcommand, spawned as
//! separate processes via `CARGO_BIN_EXE_dapc-serve`.

use dapc_runtime::{solve_many, BackendSummary, GroupSummary, RuntimeConfig, StreamReport};
use dapc_serve::{
    exit, orchestrate_sweep, run_worker, scan_parts, uncovered, CorpusSpec, SweepConfig,
    SweepManifest, WorkerOptions,
};
use proptest::prelude::*;
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

const EXE: &str = env!("CARGO_BIN_EXE_dapc-serve");

/// A fresh scratch directory under the target-local tmp root; unique per
/// call so concurrently running tests never share state.
fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "dapc-serve-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::SeqCst)
    ));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn demo_spec() -> CorpusSpec {
    CorpusSpec::parse_args([
        "ring=mis:cycle:12",
        "cover=vc:grid:3x3",
        "@backends=greedy,three-phase",
        "@eps=0.3",
        "@seeds=0..3",
        "@ensemble=2",
    ])
    .expect("demo spec parses")
}

fn spec_tokens() -> Vec<&'static str> {
    vec![
        "ring=mis:cycle:12",
        "cover=vc:grid:3x3",
        "@backends=greedy,three-phase",
        "@eps=0.3",
        "@seeds=0..3",
        "@ensemble=2",
    ]
}

fn sans_micros_groups(groups: &[GroupSummary]) -> Vec<GroupSummary> {
    groups
        .iter()
        .cloned()
        .map(|mut g| {
            g.micros = 0;
            g
        })
        .collect()
}

fn sans_micros_backends(backends: &[BackendSummary]) -> Vec<BackendSummary> {
    backends
        .iter()
        .cloned()
        .map(|mut b| {
            b.micros = 0;
            b
        })
        .collect()
}

/// Asserts the deterministic content of an orchestrated report equals
/// the single-process reference, timings aside.
fn assert_matches_reference(spec: &CorpusSpec, report: &StreamReport) {
    let reference = solve_many(&spec.build(), &RuntimeConfig::new());
    assert_eq!(
        sans_micros_groups(&reference.groups),
        sans_micros_groups(&report.groups)
    );
    assert_eq!(
        sans_micros_backends(&reference.backends),
        sans_micros_backends(&report.backends)
    );
}

/// Spawns the real worker binary on `range`, optionally armed with a
/// self-destruct fuse.
fn spawn_real_worker(dir: &Path, range: &Range<usize>, fuse: Option<usize>) -> io::Result<Child> {
    let mut cmd = Command::new(EXE);
    cmd.arg("worker")
        .arg("--dir")
        .arg(dir)
        .arg("--range")
        .arg(format!("{}..{}", range.start, range.end))
        .arg("--jobs")
        .arg("1")
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(k) = fuse {
        cmd.arg("--self-destruct-after").arg(k.to_string());
    }
    cmd.spawn()
}

#[test]
fn orchestrated_sweep_is_byte_identical_to_the_single_process_run() {
    let dir = scratch("plain");
    let spec = demo_spec();
    let cfg = SweepConfig {
        workers: 3,
        unit: 2,
        ..SweepConfig::default()
    };
    let outcome = orchestrate_sweep(&dir, &spec, &cfg, |range, _attempt| {
        spawn_real_worker(&dir, range, None)
    })
    .expect("orchestrated sweep succeeds");
    assert_eq!(outcome.corpus_jobs, spec.grid_len());
    assert_eq!(outcome.resumed_jobs, 0);
    assert_eq!(outcome.solved_jobs, spec.grid_len());
    assert_eq!(outcome.report.jobs, spec.grid_len());
    assert_eq!(outcome.stats.retries, 0);
    assert_eq!(outcome.skipped_parts, 0);
    assert_matches_reference(&spec, &outcome.report);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn an_injected_kill_forfeits_only_the_remainder_and_changes_nothing() {
    let dir = scratch("killed");
    let spec = demo_spec();
    let cfg = SweepConfig {
        workers: 3,
        unit: 2,
        ..SweepConfig::default()
    };
    // Arm exactly the first spawn: it aborts (no unwinding, no part file
    // for the in-flight unit — a SIGKILL in all but name) after three
    // solved jobs; every later spawn, including the salvage of its
    // remainder, runs clean.
    let mut armed = Some(3usize);
    let outcome = orchestrate_sweep(&dir, &spec, &cfg, |range, _attempt| {
        spawn_real_worker(&dir, range, armed.take())
    })
    .expect("sweep survives the injected kill");
    assert!(
        outcome.stats.retries >= 1,
        "the killed worker must have been judged and requeued: {:?}",
        outcome.stats
    );
    assert!(
        outcome.stats.spawns > 3,
        "the salvage must have re-spawned: {:?}",
        outcome.stats
    );
    assert_eq!(outcome.report.jobs, spec.grid_len());
    assert_matches_reference(&spec, &outcome.report);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_sweep_resumes_from_checkpoints_without_recomputing_them() {
    let dir = scratch("resume");
    let spec = demo_spec();
    let jobs = spec.grid_len();

    // Simulate a run that died partway: a manifest plus the first five
    // jobs' checkpoints (two full units and one partial), written by the
    // library worker in-process.
    SweepManifest::new(spec.clone(), 2)
        .store(&dir)
        .expect("store manifest");
    let first = run_worker(&dir, 0..5, &WorkerOptions::default()).expect("prefix worker");
    assert_eq!(first.solved_jobs, 5);

    let cfg = SweepConfig {
        workers: 2,
        unit: 2,
        ..SweepConfig::default()
    };
    let outcome = orchestrate_sweep(&dir, &spec, &cfg, |range, _attempt| {
        spawn_real_worker(&dir, range, None)
    })
    .expect("resumed sweep succeeds");
    assert_eq!(
        outcome.resumed_jobs, 5,
        "checkpointed jobs are not re-solved"
    );
    assert_eq!(outcome.solved_jobs, jobs - 5);
    assert_matches_reference(&spec, &outcome.report);

    // Resuming a *finished* sweep spawns nothing at all.
    let outcome = orchestrate_sweep(&dir, &spec, &cfg, |_range, _attempt| {
        panic!("a finished sweep must not spawn workers")
    })
    .expect("finished sweep re-opens cleanly");
    assert_eq!(outcome.resumed_jobs, jobs);
    assert_eq!(outcome.solved_jobs, 0);
    assert_eq!(outcome.stats.spawns, 0);
    assert_matches_reference(&spec, &outcome.report);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_directory_of_a_different_sweep_is_refused() {
    let dir = scratch("foreign");
    SweepManifest::new(demo_spec(), 2).store(&dir).unwrap();
    let other = CorpusSpec::parse_args(["lone=mis:cycle:6", "@backends=greedy"]).unwrap();
    let err = orchestrate_sweep(&dir, &other, &SweepConfig::default(), |_r, _a| {
        panic!("must refuse before spawning")
    })
    .expect_err("foreign directory must be refused");
    assert!(err.to_string().contains("different sweep"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_sweep_with_an_injected_kill_renders_byte_identical_tables() {
    let base = scratch("cli");
    let single_out = base.join("single.txt");
    let killed_out = base.join("killed.txt");

    let single = Command::new(EXE)
        .arg("sweep")
        .args(["--workers", "1", "--unit", "4"])
        .arg("--dir")
        .arg(base.join("single"))
        .arg("--out")
        .arg(&single_out)
        .args(spec_tokens())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .status()
        .expect("run single-worker sweep");
    assert!(single.success(), "single-worker sweep failed: {single:?}");

    let killed = Command::new(EXE)
        .arg("sweep")
        .args(["--workers", "3", "--unit", "2", "--inject-kill", "2"])
        .arg("--dir")
        .arg(base.join("killed"))
        .arg("--out")
        .arg(&killed_out)
        .args(spec_tokens())
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .status()
        .expect("run kill-drill sweep");
    assert!(killed.success(), "kill-drill sweep failed: {killed:?}");

    let single = std::fs::read(&single_out).expect("single-worker table");
    let killed = std::fs::read(&killed_out).expect("kill-drill table");
    assert!(!single.is_empty());
    assert_eq!(
        single, killed,
        "rendered tables must be byte-identical across worker counts and kills"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn a_corrupt_warm_snapshot_exits_with_bad_snapshot() {
    let dir = scratch("warm");
    let spec = demo_spec();
    SweepManifest::new(spec.clone(), 2).store(&dir).unwrap();
    let warm = dir.join("warm.bin");
    std::fs::write(&warm, b"DAPCSHD\x01 definitely not a shard snapshot").unwrap();

    // The library path surfaces the loader error …
    let err = run_worker(
        &dir,
        0..2,
        &WorkerOptions {
            warm: Some(warm.clone()),
            ..WorkerOptions::default()
        },
    )
    .expect_err("corrupt warm snapshot must fail the worker");
    assert_eq!(exit::classify(&err), exit::EXIT_BAD_SNAPSHOT, "{err}");

    // … and the binary maps it to the distinct exit code the
    // coordinator's triage relies on (corrupt input: don't retry).
    let status = Command::new(EXE)
        .arg("worker")
        .arg("--dir")
        .arg(&dir)
        .args(["--range", "0..2", "--warm"])
        .arg(&warm)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run worker with corrupt warm snapshot");
    assert_eq!(status.code(), Some(exit::EXIT_BAD_SNAPSHOT), "{status:?}");

    // No checkpoint may have been written before the failure.
    let scan = scan_parts(&dir, spec.grid_len()).unwrap();
    assert_eq!(scan.jobs_done, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_usage_errors_exit_with_the_usage_code() {
    let status = Command::new(EXE)
        .arg("worker")
        .args(["--range", "0..2"]) // no --dir
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run worker with missing flag");
    assert_eq!(status.code(), Some(exit::EXIT_USAGE), "{status:?}");

    let status = Command::new(EXE)
        .arg("no-such-subcommand")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run unknown subcommand");
    assert_eq!(status.code(), Some(exit::EXIT_USAGE), "{status:?}");
}

#[test]
fn a_worker_without_a_manifest_exits_with_bad_snapshot() {
    let dir = scratch("bare");
    let status = Command::new(EXE)
        .arg("worker")
        .arg("--dir")
        .arg(&dir)
        .args(["--range", "0..2"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run worker against an empty directory");
    assert_eq!(status.code(), Some(exit::EXIT_BAD_SNAPSHOT), "{status:?}");
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The resume invariant, quantified: checkpoint an arbitrary prefix
    /// under an arbitrary unit, resume the way the coordinator does
    /// (workers over the uncovered complement), and the stitched result
    /// equals the uninterrupted run — modulo timings, which are the only
    /// non-deterministic columns.
    #[test]
    fn any_checkpoint_prefix_resumes_to_the_uninterrupted_run(
        prefix in 0usize..=6,
        unit in 1usize..5,
    ) {
        let dir = scratch("prop");
        let spec = CorpusSpec::parse_args([
            "ring=mis:cycle:12",
            "@backends=greedy",
            "@eps=0.3",
            "@seeds=0..6",
        ]).expect("proptest spec parses");
        let jobs = spec.grid_len();
        prop_assert_eq!(jobs, 6);
        SweepManifest::new(spec.clone(), unit).store(&dir).unwrap();

        if prefix > 0 {
            run_worker(&dir, 0..prefix, &WorkerOptions::default()).expect("prefix worker");
        }
        let covered = scan_parts(&dir, jobs).unwrap().covered;
        for range in uncovered(jobs, &covered) {
            let resumed = run_worker(&dir, range.clone(), &WorkerOptions::default())
                .expect("resume worker");
            prop_assert_eq!(resumed.solved_jobs, range.len());
            prop_assert_eq!(resumed.resumed_jobs, 0);
        }

        let scan = scan_parts(&dir, jobs).unwrap();
        prop_assert_eq!(scan.skipped, 0);
        prop_assert_eq!(scan.covered.clone(), vec![0..jobs]);
        let mut parts = scan.parts.into_iter();
        let mut merged = parts.next().expect("full coverage has parts");
        for p in parts {
            merged.merge(p);
        }
        let stitched = merged.finish();
        let reference = solve_many(&spec.build(), &RuntimeConfig::new());
        prop_assert_eq!(
            sans_micros_groups(&reference.groups),
            sans_micros_groups(&stitched.groups)
        );
        prop_assert_eq!(
            sans_micros_backends(&reference.backends),
            sans_micros_backends(&stitched.backends)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
