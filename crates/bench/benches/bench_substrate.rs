//! Wall-clock benches for the graph and simulator substrates.

use criterion::{criterion_group, criterion_main, Criterion};
use dapc_graph::{gen, girth, lps, power, traversal, Hypergraph};
use dapc_local::gather::gather_views;

fn bench_generators(c: &mut Criterion) {
    c.bench_function("gen/gnp_10k_sparse", |b| {
        b.iter(|| gen::gnp(10_000, 0.0008, &mut gen::seeded_rng(1)))
    });
    c.bench_function("gen/random_regular_2k_d4", |b| {
        b.iter(|| gen::random_regular(2000, 4, &mut gen::seeded_rng(2)))
    });
    let mut group = c.benchmark_group("gen_lps");
    group.sample_size(10);
    group.bench_function("lps_5_13", |b| b.iter(|| lps::lps_graph(5, 13)));
    group.finish();
}

fn bench_traversal(c: &mut Criterion) {
    let g = gen::gnp(5000, 0.0015, &mut gen::seeded_rng(3));
    c.bench_function("traversal/bfs_gnp5000", |b| {
        b.iter(|| traversal::bfs_distances(&g, 0))
    });
    c.bench_function("traversal/ball_r5", |b| {
        b.iter(|| traversal::ball(&g, &[0], 5, None))
    });
}

fn bench_girth_and_power(c: &mut Criterion) {
    let x = lps::lps_graph(17, 5);
    c.bench_function("girth/lps_17_5", |b| b.iter(|| girth::girth(&x.graph)));
    let g = gen::grid(25, 25);
    c.bench_function("power/grid25_k3", |b| b.iter(|| power::power_graph(&g, 3)));
}

fn bench_hypergraph(c: &mut Criterion) {
    let ilp = dapc_ilp::problems::k_dominating_set(&gen::cycle(1000), 2, vec![1; 1000]);
    let h: &Hypergraph = ilp.hypergraph();
    c.bench_function("hypergraph/ball_kds_r10", |b| {
        b.iter(|| h.ball(&[0], 10, None, None))
    });
    c.bench_function("hypergraph/primal_graph", |b| b.iter(|| h.primal_graph()));
}

fn bench_simulator(c: &mut Criterion) {
    let g = gen::grid(20, 20);
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    group.bench_function("gather_r4_grid20", |b| b.iter(|| gather_views(&g, 4)));
    group.finish();
}

criterion_group!(
    benches,
    bench_generators,
    bench_traversal,
    bench_girth_and_power,
    bench_hypergraph,
    bench_simulator
);
criterion_main!(benches);
