//! Wall-clock benches for the `dapc-runtime` batch path, plus an explicit
//! sequential-vs-batch comparison: the same corpus solved the PR-1 way
//! (one job at a time, no shared prep) and through `solve_many` at 4
//! workers with the per-instance-family prep cache. The comparison prints
//! the measured speedup and the cache hit rate — the acceptance numbers
//! for the batch subsystem.

use criterion::{criterion_group, criterion_main, Criterion};
use dapc_core::engine::SolveConfig;
use dapc_graph::gen;
use dapc_ilp::problems;
use dapc_runtime::{solve_many, Corpus, RuntimeConfig};

/// An E3/E5-style sweep: mixed packing/covering instances × ε grid × seed
/// range, three-phase throughout. Every `(instance, budget)` family
/// recurs `|ε grid| × |seeds|` times, which is exactly the reuse the prep
/// cache is built to exploit.
fn sweep_corpus() -> Corpus {
    Corpus::builder()
        .instance(
            "MIS/gnp40",
            problems::max_independent_set_unweighted(&gen::gnp(40, 0.08, &mut gen::seeded_rng(1))),
        )
        .instance(
            "MIS/cycle48",
            problems::max_independent_set_unweighted(&gen::cycle(48)),
        )
        .instance(
            "VC/cycle40",
            problems::min_vertex_cover_unweighted(&gen::cycle(40)),
        )
        .instance(
            "DS/cycle33",
            problems::min_dominating_set_unweighted(&gen::cycle(33)),
        )
        .backend("three-phase")
        .eps_grid([0.2, 0.3])
        .seeds(0..8)
        .base_config(SolveConfig::new())
        .build()
}

fn sequential_config() -> RuntimeConfig {
    RuntimeConfig::new()
        .jobs(1)
        .prep_cache(false)
        .reference_optima(false)
}

fn batch_config() -> RuntimeConfig {
    RuntimeConfig::new()
        .jobs(4)
        .prep_cache(true)
        .reference_optima(false)
}

fn bench_batch_paths(c: &mut Criterion) {
    let corpus = sweep_corpus();
    let mut group = c.benchmark_group("batch");
    group.sample_size(3);
    group.bench_function("sequential_no_cache", |b| {
        b.iter(|| solve_many(&corpus, &sequential_config()))
    });
    group.bench_function("solve_many_4workers_cached", |b| {
        b.iter(|| solve_many(&corpus, &batch_config()))
    });
    group.finish();
}

/// One timed head-to-head run, printing the numbers the ISSUE acceptance
/// criteria name: ≥ 2× wall-clock at 4 workers with a positive prep-cache
/// hit rate, and bit-identical results either way.
fn report_speedup(_c: &mut Criterion) {
    let corpus = sweep_corpus();
    let sequential = solve_many(&corpus, &sequential_config());
    let batch = solve_many(&corpus, &batch_config());
    assert_eq!(
        sequential.outcomes(),
        batch.outcomes(),
        "batch execution must be bit-identical to the sequential path"
    );
    let speedup = sequential.wall.as_secs_f64() / batch.wall.as_secs_f64();
    println!(
        "batch/speedup: {} jobs, sequential {:.2?} vs 4 workers + prep cache {:.2?} => {speedup:.2}x \
         (cache: {} hits / {} misses, rate {:.2})",
        corpus.len(),
        sequential.wall,
        batch.wall,
        batch.cache.hits,
        batch.cache.misses,
        batch.cache.hit_rate(),
    );
    assert!(
        batch.cache.hits > 0,
        "the sweep must reuse prep work across seeds"
    );
}

criterion_group!(benches, bench_batch_paths, report_speedup);
criterion_main!(benches);
