//! Wall-clock benches for the `dapc-runtime` batch path, plus three
//! explicit acceptance measurements:
//!
//! 1. sequential-vs-batch: the same corpus solved the PR-1 way (one job
//!    at a time, no shared prep) and through `solve_many` at 4 concurrent
//!    jobs with the per-instance-family prep cache;
//! 2. streaming smoke: `solve_many_streaming` delivers the identical
//!    results in canonical order with a bounded reorder buffer;
//! 3. executor-vs-per-solve-pool: on a corpus of many *small* preps, the
//!    shared-executor batch wall clock beside the per-solve pool
//!    spawn/teardown tax the former architecture paid (measured
//!    standalone — the removed cost, not a rerun of the old code). The
//!    measured line is committed as `BENCH_exec.json` at the repo root;
//! 4. shard-merge: the same sweep as a 2-shard split — per-shard walls,
//!    snapshot sizes, serialise+merge overhead (asserted identical to
//!    the single-process aggregation), and the warm-start shipping win
//!    when shard 0's prep snapshot seeds shard 1's cache. The measured
//!    line is committed as `BENCH_shard.json` at the repo root.
//!
//! Run quick (CI smoke): `cargo bench -p dapc-bench --bench bench_batch -- --quick`

use criterion::{criterion_group, criterion_main, Criterion};
use dapc_core::engine::SolveConfig;
use dapc_graph::gen;
use dapc_ilp::problems;
use dapc_runtime::{
    solve_many, solve_many_streaming, solve_shard, solve_shard_with_cache, Corpus, JobResult,
    PrepCache, RuntimeConfig, ShardReport,
};
use std::sync::{Arc, Mutex};
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// An E3/E5-style sweep: mixed packing/covering instances × ε grid × seed
/// range, three-phase throughout. Every `(instance, budget)` family
/// recurs `|ε grid| × |seeds|` times, which is exactly the reuse the prep
/// cache is built to exploit.
fn sweep_corpus() -> Corpus {
    let (eps, seeds): (&[f64], _) = if quick_mode() {
        (&[0.3], 0..3)
    } else {
        (&[0.2, 0.3], 0..8)
    };
    Corpus::builder()
        .instance(
            "MIS/gnp40",
            problems::max_independent_set_unweighted(&gen::gnp(40, 0.08, &mut gen::seeded_rng(1))),
        )
        .instance(
            "MIS/cycle48",
            problems::max_independent_set_unweighted(&gen::cycle(48)),
        )
        .instance(
            "VC/cycle40",
            problems::min_vertex_cover_unweighted(&gen::cycle(40)),
        )
        .instance(
            "DS/cycle33",
            problems::min_dominating_set_unweighted(&gen::cycle(33)),
        )
        .backend("three-phase")
        .eps_grid(eps.iter().copied())
        .seeds(seeds)
        .base_config(SolveConfig::new())
        .build()
}

/// Many small instances, one seed sweep: every solve's preparation is
/// tiny, so under the former architecture the per-solve
/// `ThreadPool::new(prep_workers)` spawn/teardown was a visible fraction
/// of the job — the workload the shared executor targets.
fn small_prep_corpus() -> Corpus {
    let (count, seeds) = if quick_mode() { (6, 0..2) } else { (10, 0..4) };
    let mut b = Corpus::builder()
        .backend("three-phase")
        .eps(0.3)
        .seeds(seeds)
        .base_config(SolveConfig::new());
    for i in 0..count {
        let n = 14 + 2 * i;
        b = b.instance(
            format!("MIS/gnp{n}-{i}"),
            problems::max_independent_set_unweighted(&gen::gnp(
                n,
                0.12,
                &mut gen::seeded_rng(100 + i as u64),
            )),
        );
    }
    b.build()
}

fn sequential_config() -> RuntimeConfig {
    RuntimeConfig::new()
        .jobs(1)
        .prep_cache(false)
        .reference_optima(false)
}

fn batch_config() -> RuntimeConfig {
    RuntimeConfig::new()
        .jobs(4)
        .prep_cache(true)
        .reference_optima(false)
}

fn bench_batch_paths(c: &mut Criterion) {
    let corpus = sweep_corpus();
    let mut group = c.benchmark_group("batch");
    group.sample_size(if quick_mode() { 2 } else { 3 });
    group.bench_function("sequential_no_cache", |b| {
        b.iter(|| solve_many(&corpus, &sequential_config()))
    });
    group.bench_function("solve_many_4workers_cached", |b| {
        b.iter(|| solve_many(&corpus, &batch_config()))
    });
    group.finish();
}

/// One timed head-to-head run, printing the numbers the ISSUE acceptance
/// criteria name: ≥ 2× wall-clock at 4 workers with a positive prep-cache
/// hit rate, and bit-identical results either way.
fn report_speedup(_c: &mut Criterion) {
    let corpus = sweep_corpus();
    let sequential = solve_many(&corpus, &sequential_config());
    let batch = solve_many(&corpus, &batch_config());
    assert_eq!(
        sequential.outcomes(),
        batch.outcomes(),
        "batch execution must be bit-identical to the sequential path"
    );
    let speedup = sequential.wall.as_secs_f64() / batch.wall.as_secs_f64();
    println!(
        "batch/speedup: {} jobs, sequential {:.2?} vs 4 workers + prep cache {:.2?} => {speedup:.2}x \
         (cache: {} hits / {} misses, rate {:.2})",
        corpus.len(),
        sequential.wall,
        batch.wall,
        batch.cache.hits,
        batch.cache.misses,
        batch.cache.hit_rate(),
    );
    assert!(
        batch.cache.hits > 0,
        "the sweep must reuse prep work across seeds"
    );
}

/// Streaming smoke: `solve_many_streaming` hands over the identical
/// `(key, report)` sequence in canonical order, with the reorder buffer
/// staying inside its bound — the CI `--quick` step runs this.
fn report_streaming_smoke(_c: &mut Criterion) {
    let corpus = sweep_corpus();
    let batch = solve_many(&corpus, &batch_config());
    let sink: Arc<Mutex<Vec<JobResult>>> = Arc::default();
    let hook = Arc::clone(&sink);
    let stream = solve_many_streaming(&corpus, &batch_config(), move |r| {
        hook.lock().expect("stream sink").push(r);
    });
    let streamed = Arc::try_unwrap(sink)
        .expect("hook dropped")
        .into_inner()
        .expect("stream sink");
    assert_eq!(batch.results.len(), streamed.len());
    for (a, b) in batch.results.iter().zip(&streamed) {
        assert_eq!(a.key, b.key, "streaming broke the canonical order");
        assert_eq!(a.report, b.report, "streaming moved a report byte");
    }
    println!(
        "batch/streaming: {} jobs in canonical order, peak reorder buffer {} (workers {})",
        stream.jobs, stream.peak_buffered, stream.workers,
    );
}

/// The tentpole measurement: the shared-executor batch wall clock beside
/// the *per-solve pool tax* the former architecture paid on the same
/// corpus — one vendored `ThreadPool::new(4)` spawn + teardown per solve,
/// measured standalone (it cannot be re-inserted into `prepare` itself,
/// which no longer spawns pools, so this is an emulation of the removed
/// cost, not a rerun of the old code; the old tax was partially
/// overlapped across jobs, so the standalone figure is an upper bound on
/// wall clock and an exact count of spawned threads). Prints one
/// `BENCH_exec` JSON line; the committed `BENCH_exec.json` records it
/// with the host's core count.
fn report_executor_vs_per_solve_pool(_c: &mut Criterion) {
    let corpus = small_prep_corpus();
    let rt = RuntimeConfig::new()
        .jobs(2)
        .prep_workers(4)
        .reference_optima(false);
    let quick = quick_mode();
    let samples = if quick { 1 } else { 3 };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let (mut shared_exec, mut pool_tax) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..samples {
        let start = Instant::now();
        let stream = solve_many_streaming(&corpus, &rt, |_r| {});
        shared_exec = shared_exec.min(start.elapsed().as_secs_f64());
        assert_eq!(stream.jobs, corpus.len());

        // The removed cost, measured alone: the former architecture span
        // (and tore down) one prep pool per solve.
        let start = Instant::now();
        for _ in 0..corpus.len() {
            let pool = threadpool::ThreadPool::new(4);
            pool.join();
        }
        pool_tax = pool_tax.min(start.elapsed().as_secs_f64());
    }

    // Observability tax: the identical batch with the dapc-obs registry
    // armed, so every executor/cache/runtime instrumentation site takes its
    // hot path (clock reads + atomic bumps) instead of the single relaxed
    // gate load. The batch is ms-scale, so a single on/off pair is all
    // scheduler noise: the comparison interleaves off/on pairs and takes
    // the min of each side, which cancels machine-wide drift. The gate is
    // restored to off before returning so later report fns stay unmetered.
    // One batch is ~ms-scale, too short to time against scheduler jitter,
    // so each timed sample is `reps` back-to-back batches.
    let (pairs, reps) = if quick { (3, 2) } else { (10, 8) };
    let (mut plain_wall, mut obs_wall) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..pairs {
        dapc_obs::set_enabled(false);
        let start = Instant::now();
        for _ in 0..reps {
            let stream = solve_many_streaming(&corpus, &rt, |_r| {});
            assert_eq!(stream.jobs, corpus.len());
        }
        plain_wall = plain_wall.min(start.elapsed().as_secs_f64() / reps as f64);

        dapc_obs::set_enabled(true);
        let start = Instant::now();
        for _ in 0..reps {
            let stream = solve_many_streaming(&corpus, &rt, |_r| {});
            assert_eq!(stream.jobs, corpus.len());
        }
        obs_wall = obs_wall.min(start.elapsed().as_secs_f64() / reps as f64);
    }
    dapc_obs::set_enabled(false);
    let obs_overhead = obs_wall / plain_wall - 1.0;

    let tax_fraction = pool_tax / shared_exec;
    println!(
        "BENCH_exec {{\"corpus\":{{\"jobs\":{},\"shape\":\"small-prep\"}},\"quick\":{quick},\
         \"cores\":{cores},\"rt\":{{\"jobs\":2,\"prep_workers\":4}},\
         \"wall_seconds\":{{\"shared_executor_batch\":{shared_exec:.4},\"per_solve_pool_tax\":{pool_tax:.4},\
         \"obs_baseline_batch\":{plain_wall:.4},\"obs_enabled_batch\":{obs_wall:.4}}},\
         \"tax_over_batch\":{tax_fraction:.3},\
         \"obs_overhead\":{obs_overhead:.3},\
         \"threads_not_spawned\":{},\
         \"emulation\":\"tax measured standalone: one ThreadPool::new(4)+join per solve of the same corpus\"}}",
        corpus.len(),
        4 * corpus.len(),
    );
}

/// The shard-merge measurement: the E3-style sweep as a 2-shard split.
/// Prints one `BENCH_shard` JSON line recording (a) the per-shard walls
/// and the serialise → load → merge → finish overhead beside the
/// single-process streaming wall, with the merged aggregation asserted
/// identical (timings aside); and (b) the warm-start shipping win — a
/// single-family seed sweep split in two, shard 1 solved cold vs seeded
/// from shard 0's bundled prep snapshot.
fn report_shard_merge(_c: &mut Criterion) {
    let corpus = sweep_corpus();
    let rt = batch_config();
    let single = solve_many_streaming(&corpus, &rt, |_r| {});

    let start = Instant::now();
    let shard0 = solve_shard(&corpus, 0, 2, &rt);
    let shard1 = solve_shard(&corpus, 1, 2, &rt);
    let shard_wall = [shard0.wall.as_secs_f64(), shard1.wall.as_secs_f64()];
    let solve_wall = start.elapsed().as_secs_f64();

    // The merge protocol through bytes, as cooperating processes run it.
    let start = Instant::now();
    let mut shipped = Vec::new();
    for report in [shard0, shard1] {
        let mut bytes = Vec::new();
        report.save_to(&mut bytes).expect("write to a Vec");
        shipped.push(bytes);
    }
    let snapshot_bytes: usize = shipped.iter().map(Vec::len).sum();
    let mut merged = ShardReport::load_from(shipped[0].as_slice()).expect("shard 0");
    merged.merge(ShardReport::load_from(shipped[1].as_slice()).expect("shard 1"));
    let stream = merged.finish();
    let merge_wall = start.elapsed().as_secs_f64();
    assert_eq!(stream.jobs, single.jobs);
    for (a, b) in stream.groups.iter().zip(&single.groups) {
        let (mut a, mut b) = (a.clone(), b.clone());
        a.micros = 0;
        b.micros = 0;
        assert_eq!(a, b, "shard merge moved an aggregate");
    }

    // Warm-start shipping: one instance family swept over seeds, split
    // in two — every subset solve shard 1 needs, shard 0 already did.
    let seeds = if quick_mode() { 0..6 } else { 0..12 };
    let family = Corpus::builder()
        .instance(
            "MIS/gnp40",
            problems::max_independent_set_unweighted(&gen::gnp(40, 0.08, &mut gen::seeded_rng(1))),
        )
        .backend("three-phase")
        .eps(0.3)
        .seeds(seeds)
        .base_config(SolveConfig::new())
        .build();
    // Reference optima on: the whole-instance exact solve both shards
    // need is the single most expensive shareable entry.
    let srt = RuntimeConfig::new();
    let cold_cache = PrepCache::new();
    let first = solve_shard_with_cache(&family, 0, 2, &srt, &cold_cache).with_prep(&cold_cache);

    let start = Instant::now();
    let cold = solve_shard(&family, 1, 2, &srt);
    let cold_wall = start.elapsed().as_secs_f64();

    let warm_cache = PrepCache::new();
    let start = Instant::now();
    let seeded = first.warm_start(&warm_cache).expect("load the snapshot");
    let warm = solve_shard_with_cache(&family, 1, 2, &srt, &warm_cache);
    let warm_wall = start.elapsed().as_secs_f64();
    assert!(
        warm.cache.misses <= cold.cache.misses,
        "a warm start cannot add misses"
    );

    println!(
        "BENCH_shard {{\"corpus\":{{\"jobs\":{},\"shape\":\"E3-style sweep\"}},\"quick\":{},\
         \"shards\":2,\"wall_seconds\":{{\"single_process\":{:.4},\"shard_solves\":{solve_wall:.4},\
         \"per_shard\":[{:.4},{:.4}],\"serialise_load_merge_finish\":{merge_wall:.4}}},\
         \"snapshot_bytes\":{snapshot_bytes},\
         \"merge_overhead_over_single\":{:.5},\
         \"warm_start_shipping\":{{\"family_jobs\":{},\"shipped_entries\":{seeded},\
         \"shard1_misses\":{{\"cold\":{},\"warm\":{}}},\
         \"shard1_wall_seconds\":{{\"cold\":{cold_wall:.4},\"warm\":{warm_wall:.4}}}}},\
         \"identity\":\"merged groups asserted equal to single-process (timings aside)\"}}",
        corpus.len(),
        quick_mode(),
        single.wall.as_secs_f64(),
        shard_wall[0],
        shard_wall[1],
        merge_wall / single.wall.as_secs_f64(),
        family.len(),
        cold.cache.misses,
        warm.cache.misses,
    );
}

criterion_group!(
    benches,
    bench_batch_paths,
    report_speedup,
    report_streaming_smoke,
    report_executor_vs_per_solve_pool,
    report_shard_merge
);
criterion_main!(benches);
