//! Wall-clock benches for the end-to-end Theorem 1.2/1.3 solvers and the
//! GKM17 baseline (experiments E3–E6).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dapc_core::covering::approximate_covering;
use dapc_core::gkm::{gkm_solve, GkmParams};
use dapc_core::packing::approximate_packing;
use dapc_core::params::PcParams;
use dapc_graph::gen;
use dapc_ilp::problems;

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    group.sample_size(10);
    for n in [24usize, 48] {
        let g = gen::cycle(n);
        let ilp = problems::max_independent_set_unweighted(&g);
        let params = PcParams::packing_scaled(0.3, n as f64, 0.02, 0.3);
        group.bench_function(format!("mis_cycle{n}"), |b| {
            b.iter_batched(
                || gen::seeded_rng(5),
                |mut rng| approximate_packing(&ilp, &params, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("covering");
    group.sample_size(10);
    for n in [24usize, 48] {
        let g = gen::cycle(n);
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let params = PcParams::covering_scaled(0.3, n as f64, 0.02, 0.3, 1.0);
        group.bench_function(format!("vc_cycle{n}"), |b| {
            b.iter_batched(
                || gen::seeded_rng(6),
                |mut rng| approximate_covering(&ilp, &params, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_gkm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gkm_baseline");
    group.sample_size(10);
    let g = gen::cycle(48);
    let ilp = problems::max_independent_set_unweighted(&g);
    let params = GkmParams::new(0.3, 48.0, 0.2);
    group.bench_function("mis_cycle48", |b| {
        b.iter_batched(
            || gen::seeded_rng(7),
            |mut rng| gkm_solve(&ilp, &params, &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_packing, bench_covering, bench_gkm);
criterion_main!(benches);
