//! Wall-clock benches for the end-to-end solver backends (experiments
//! E3–E6), all driven through the unified engine registry so backends are
//! benchmarked under identical harness code.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dapc_core::engine::{self, SolveConfig};
use dapc_graph::gen;
use dapc_ilp::problems;

fn bench_packing(c: &mut Criterion) {
    let mut group = c.benchmark_group("packing");
    group.sample_size(10);
    for n in [24usize, 48] {
        let g = gen::cycle(n);
        let ilp = problems::max_independent_set_unweighted(&g);
        let cfg = SolveConfig::new().eps(0.3).seed(5);
        let solver = engine::backend("three-phase").unwrap();
        group.bench_function(format!("mis_cycle{n}"), |b| {
            b.iter_batched(
                || cfg.rng(),
                |mut rng| solver.solve(&ilp, &cfg, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_covering(c: &mut Criterion) {
    let mut group = c.benchmark_group("covering");
    group.sample_size(10);
    for n in [24usize, 48] {
        let g = gen::cycle(n);
        let ilp = problems::min_vertex_cover_unweighted(&g);
        let cfg = SolveConfig::new().eps(0.3).seed(6);
        let solver = engine::backend("three-phase").unwrap();
        group.bench_function(format!("vc_cycle{n}"), |b| {
            b.iter_batched(
                || cfg.rng(),
                |mut rng| solver.solve(&ilp, &cfg, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_backend_registry(c: &mut Criterion) {
    // Every registered backend on one fixed instance: the fair-comparison
    // harness the engine was built for.
    let mut group = c.benchmark_group("backends");
    group.sample_size(10);
    let g = gen::cycle(48);
    let ilp = problems::max_independent_set_unweighted(&g);
    let cfg = SolveConfig::new().eps(0.3).seed(7).ensemble_runs(6);
    for name in engine::BACKENDS {
        let solver = engine::backend(name).unwrap();
        group.bench_function(format!("mis_cycle48/{name}"), |b| {
            b.iter_batched(
                || cfg.rng(),
                |mut rng| solver.solve(&ilp, &cfg, &mut rng),
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_packing,
    bench_covering,
    bench_backend_registry
);
criterion_main!(benches);
