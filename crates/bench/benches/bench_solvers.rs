//! Wall-clock benches for the exact local solvers (the "free local
//! computation" the LOCAL model grants — here is its simulation price).

use criterion::{criterion_group, criterion_main, Criterion};
use dapc_graph::gen;
use dapc_ilp::problems;
use dapc_ilp::restrict::{covering_restriction, packing_restriction};
use dapc_ilp::solvers::{self, blossom, mis, SolverBudget};

fn bench_mwis(c: &mut Criterion) {
    let g = gen::gnp(60, 0.15, &mut gen::seeded_rng(1));
    let w: Vec<u64> = (0..60).map(|i| 1 + (i as u64 % 7)).collect();
    c.bench_function("mwis_bnb/gnp60x0.15", |b| {
        b.iter(|| mis::max_weight_independent_set(&g, &w, &solvers::SolverBudget::unlimited()))
    });
}

fn bench_blossom(c: &mut Criterion) {
    let g = gen::random_regular(600, 3, &mut gen::seeded_rng(2));
    c.bench_function("blossom/reg3_600", |b| b.iter(|| blossom::max_matching(&g)));
}

fn bench_covering_bnb(c: &mut Criterion) {
    let g = gen::grid(4, 6);
    let ilp = problems::min_dominating_set_unweighted(&g);
    let sub = covering_restriction(&ilp, &[true; 24]);
    c.bench_function("covering_bnb/ds_grid4x6", |b| {
        b.iter(|| solvers::bnb::solve_covering(&sub, &solvers::SolverBudget::unlimited()))
    });
}

fn bench_dispatch(c: &mut Criterion) {
    let g = gen::cycle(80);
    let ilp = problems::max_independent_set_unweighted(&g);
    let sub = packing_restriction(&ilp, &[true; 80]);
    let budget = SolverBudget::default();
    c.bench_function("dispatch/mis_cycle80", |b| {
        b.iter(|| solvers::solve(&sub, &budget))
    });
    let m = problems::max_matching(&gen::complete(24));
    let subm = packing_restriction(&m.ilp, &vec![true; m.ilp.n()]);
    c.bench_function("dispatch/matching_k24", |b| {
        b.iter(|| solvers::solve(&subm, &budget))
    });
}

fn bench_greedy(c: &mut Criterion) {
    let g = gen::gnp(800, 0.01, &mut gen::seeded_rng(3));
    let pack = problems::max_independent_set_unweighted(&g);
    let psub = packing_restriction(&pack, &vec![true; 800]);
    c.bench_function("greedy_packing/gnp800", |b| {
        b.iter(|| solvers::greedy::greedy_packing(&psub))
    });
    let cover = problems::min_dominating_set_unweighted(&g);
    let csub = covering_restriction(&cover, &vec![true; 800]);
    c.bench_function("greedy_covering/gnp800", |b| {
        b.iter(|| solvers::greedy::greedy_covering(&csub))
    });
}

criterion_group!(
    benches,
    bench_mwis,
    bench_blossom,
    bench_covering_bnb,
    bench_dispatch,
    bench_greedy
);
criterion_main!(benches);
