//! Wall-clock benches for every decomposition algorithm (substrate of
//! experiments E1/E2/E8/E9).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dapc_decomp::blackbox::{blackbox_ldd, BlackboxParams};
use dapc_decomp::elkin_neiman::{elkin_neiman, EnParams};
use dapc_decomp::mpx::mpx;
use dapc_decomp::network_decomposition::network_decomposition;
use dapc_decomp::sparse_cover::sparse_cover;
use dapc_decomp::three_phase::{three_phase_ldd, LddParams};
use dapc_graph::{gen, Hypergraph};

fn bench_elkin_neiman(c: &mut Criterion) {
    let g = gen::gnp(2000, 0.003, &mut gen::seeded_rng(1));
    let params = EnParams::new(0.2, 2000.0);
    c.bench_function("elkin_neiman/gnp2000", |b| {
        b.iter_batched(
            || gen::seeded_rng(7),
            |mut rng| elkin_neiman(&g, &params, &mut rng, None),
            BatchSize::SmallInput,
        )
    });
}

fn bench_mpx(c: &mut Criterion) {
    let g = gen::grid(45, 45);
    c.bench_function("mpx/grid45x45", |b| {
        b.iter_batched(
            || gen::seeded_rng(8),
            |mut rng| mpx(&g, 0.2, 2025.0, &mut rng),
            BatchSize::SmallInput,
        )
    });
}

fn bench_three_phase(c: &mut Criterion) {
    let g = gen::gnp(1000, 0.006, &mut gen::seeded_rng(2));
    let params = LddParams::scaled(0.3, 1000.0, 0.05);
    let mut group = c.benchmark_group("three_phase");
    group.sample_size(10);
    group.bench_function("gnp1000", |b| {
        b.iter_batched(
            || gen::seeded_rng(9),
            |mut rng| three_phase_ldd(&g, &params, &mut rng, None),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_blackbox(c: &mut Criterion) {
    let g = gen::grid(20, 20);
    let params = BlackboxParams::new(0.3, 400.0, 0.02);
    let mut group = c.benchmark_group("blackbox");
    group.sample_size(10);
    group.bench_function("grid20x20", |b| {
        b.iter_batched(
            || gen::seeded_rng(10),
            |mut rng| blackbox_ldd(&g, &params, &mut rng),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_sparse_cover(c: &mut Criterion) {
    let h = Hypergraph::from_graph(&gen::grid(30, 30));
    c.bench_function("sparse_cover/grid30x30", |b| {
        b.iter_batched(
            || gen::seeded_rng(11),
            |mut rng| sparse_cover(&h, 0.2, 900.0, &mut rng, None, None),
            BatchSize::SmallInput,
        )
    });
}

fn bench_network_decomposition(c: &mut Criterion) {
    let g = gen::gnp(800, 0.008, &mut gen::seeded_rng(3));
    c.bench_function("network_decomposition/gnp800", |b| {
        b.iter_batched(
            || gen::seeded_rng(12),
            |mut rng| network_decomposition(&g, 800.0, &mut rng),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_elkin_neiman,
    bench_mpx,
    bench_three_phase,
    bench_blackbox,
    bench_sparse_cover,
    bench_network_decomposition
);
criterion_main!(benches);
