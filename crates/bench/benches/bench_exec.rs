//! The contended high-fan-out executor bench (ROADMAP open item 2's
//! success metric): hundreds of sub-millisecond tasks spawned through
//! nested scopes — the exact shape the paper's decomposition produces
//! (many independent cheap subset solves per cluster) — timed on the
//! work-stealing executor beside a faithful compact replica of the old
//! central-queue executor, with the job reports asserted byte-identical
//! across 1/2/4-worker stealing pools *and* against the central replica.
//!
//! Methodology mirrors the per-solve pool-tax emulation in `bench_batch`:
//! the old architecture cannot be re-run (the code was rewritten in
//! place), so its handoff discipline is re-created in miniature inside
//! the bench — one shared `Mutex<VecDeque>` + condvar that every spawn,
//! pop, and owner help-scan must take, nested spawns pushed to the
//! front via an ambient thread-local pool stack, an unconditional
//! `notify_one` per push, and the owner's help loop re-locking and
//! position-scanning the whole queue per task, exactly as
//! `crates/exec/src/lib.rs` did before the rewrite.
//!
//! Run quick (CI smoke): `cargo bench -p dapc-bench --bench bench_exec -- --quick`

use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Fan-out shape: `PARENTS` coarse jobs, each spawning `SUBTASKS`
/// sub-millisecond subtasks through a nested scope — several hundred
/// tasks total, every one cheap enough that queue handoff is a visible
/// fraction of its cost.
const PARENTS: usize = 16;
const SUBTASKS: usize = 128;
/// FNV-fold rounds per subtask: enough work to be a real task (~µs),
/// little enough that handoff overhead stays measurable.
const ROUNDS: u64 = 100;

/// The deterministic subtask body: an FNV-1a fold seeded by the task's
/// coordinates. Identical in both executors, so any byte difference in
/// the collected reports is a scheduling-correctness bug, not noise.
fn fnv_fold(parent: usize, child: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut x = (parent as u64) << 32 | child as u64;
    for _ in 0..ROUNDS {
        h ^= x;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        x = x.rotate_left(17) ^ h;
    }
    h
}

/// One parent's report: its subtask values in subtask order, serialised
/// LE — the per-job `(key, report)` analogue the identity assertion
/// compares byte-for-byte.
fn report_bytes(slots: &[AtomicU64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(slots.len() * 8);
    for s in slots {
        bytes.extend_from_slice(&s.load(Ordering::SeqCst).to_le_bytes());
    }
    bytes
}

/// Runs the fan-out on the work-stealing executor pinned to `workers`
/// and returns every parent's report, parent-indexed.
fn run_stealing(workers: usize) -> Vec<Vec<u8>> {
    let exec = dapc_exec::Executor::new(workers);
    let reports: Vec<Mutex<Vec<u8>>> = (0..PARENTS).map(|_| Mutex::new(Vec::new())).collect();
    let reports = Arc::new(reports);
    dapc_exec::with_executor(&exec, || {
        dapc_exec::scope(|s| {
            for parent in 0..PARENTS {
                let reports = Arc::clone(&reports);
                s.spawn(move || {
                    let slots: Arc<Vec<AtomicU64>> =
                        Arc::new((0..SUBTASKS).map(|_| AtomicU64::new(0)).collect());
                    dapc_exec::scope(|inner| {
                        for child in 0..SUBTASKS {
                            let slots = Arc::clone(&slots);
                            inner.spawn(move || {
                                slots[child].store(fnv_fold(parent, child), Ordering::SeqCst);
                            });
                        }
                    });
                    *reports[parent].lock().unwrap() = report_bytes(&slots);
                });
            }
        });
    });
    reports.iter().map(|r| r.lock().unwrap().clone()).collect()
}

// ---------------------------------------------------------------------
// Central-queue replica: the old executor's handoff discipline, compact.
// ---------------------------------------------------------------------

struct CTask {
    group: Arc<CGroup>,
    job: Box<dyn FnOnce() + Send + 'static>,
}

struct CState {
    queue: VecDeque<CTask>,
    shutdown: bool,
}

struct CShared {
    state: Mutex<CState>,
    work: Condvar,
}

struct CGroup {
    pending: Mutex<usize>,
    done: Condvar,
}

thread_local! {
    /// The old executor's nested-spawn detection: pools whose tasks this
    /// thread is currently running, innermost last.
    static C_AMBIENT: RefCell<Vec<Arc<CShared>>> = const { RefCell::new(Vec::new()) };
}

fn c_spawn(shared: &Arc<CShared>, group: &Arc<CGroup>, job: Box<dyn FnOnce() + Send + 'static>) {
    *group.pending.lock().unwrap() += 1;
    let nested = C_AMBIENT.with(|a| a.borrow().last().is_some_and(|s| Arc::ptr_eq(s, shared)));
    let task = CTask {
        group: Arc::clone(group),
        job,
    };
    let mut st = shared.state.lock().unwrap();
    if nested {
        st.queue.push_front(task); // depth-first, the old rule
    } else {
        st.queue.push_back(task);
    }
    drop(st);
    shared.work.notify_one(); // unconditional, the old cost
}

fn c_run(shared: &Arc<CShared>, task: CTask) {
    C_AMBIENT.with(|a| a.borrow_mut().push(Arc::clone(shared)));
    (task.job)();
    C_AMBIENT.with(|a| {
        a.borrow_mut().pop();
    });
    let mut pending = task.group.pending.lock().unwrap();
    *pending -= 1;
    if *pending == 0 {
        drop(pending);
        task.group.done.notify_all();
    }
}

fn c_worker(shared: Arc<CShared>) {
    loop {
        let task = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(t) = st.queue.pop_front() {
                    break t;
                }
                if st.shutdown {
                    return;
                }
                st = shared.work.wait(st).unwrap();
            }
        };
        c_run(&shared, task);
    }
}

/// The old owner-wait path, faithfully: per help-pop, lock the *shared*
/// queue and `position`-scan the whole thing for a group task; when the
/// scan comes up empty, wait one wakeup on the group condvar and re-take
/// the shared lock to scan again — the re-lock-per-wakeup cost the
/// satellite fix removed from the real executor.
fn c_scope(shared: &Arc<CShared>, body: impl FnOnce(&dyn Fn(Box<dyn FnOnce() + Send + 'static>))) {
    let group = Arc::new(CGroup {
        pending: Mutex::new(0),
        done: Condvar::new(),
    });
    {
        let spawner = |job: Box<dyn FnOnce() + Send + 'static>| c_spawn(shared, &group, job);
        body(&spawner);
    }
    loop {
        let found = {
            let mut st = shared.state.lock().unwrap();
            st.queue
                .iter()
                .position(|t| Arc::ptr_eq(&t.group, &group))
                .and_then(|i| st.queue.remove(i))
        };
        match found {
            Some(task) => c_run(shared, task),
            None => {
                let pending = group.pending.lock().unwrap();
                if *pending == 0 {
                    return;
                }
                let _unused = group.done.wait(pending).unwrap();
                // Old behavior: go back and rescan the shared queue.
            }
        }
    }
}

/// Runs the identical fan-out through the central-queue replica.
fn run_central(workers: usize) -> Vec<Vec<u8>> {
    let shared = Arc::new(CShared {
        state: Mutex::new(CState {
            queue: VecDeque::new(),
            shutdown: false,
        }),
        work: Condvar::new(),
    });
    let handles: Vec<_> = (0..workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || c_worker(shared))
        })
        .collect();
    let reports: Arc<Vec<Mutex<Vec<u8>>>> =
        Arc::new((0..PARENTS).map(|_| Mutex::new(Vec::new())).collect());
    c_scope(&shared, |spawn| {
        for parent in 0..PARENTS {
            let shared = Arc::clone(&shared);
            let reports = Arc::clone(&reports);
            spawn(Box::new(move || {
                let slots: Arc<Vec<AtomicU64>> =
                    Arc::new((0..SUBTASKS).map(|_| AtomicU64::new(0)).collect());
                c_scope(&shared, |inner| {
                    for child in 0..SUBTASKS {
                        let slots = Arc::clone(&slots);
                        inner(Box::new(move || {
                            slots[child].store(fnv_fold(parent, child), Ordering::SeqCst);
                        }));
                    }
                });
                *reports[parent].lock().unwrap() = report_bytes(&slots);
            }));
        }
    });
    shared.state.lock().unwrap().shutdown = true;
    shared.work.notify_all();
    for h in handles {
        let _ = h.join();
    }
    reports.iter().map(|r| r.lock().unwrap().clone()).collect()
}

/// The contended measurement + the identity assertion, printed as one
/// `BENCH_exec_contended` JSON line; the committed `BENCH_exec.json`
/// records it under `"contended"` with the host's core count.
fn report_contended_fan_out(_c: &mut Criterion) {
    let quick = quick_mode();
    let samples = if quick { 3 } else { 7 };
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let headline_workers = 4usize;

    // Identity first: stealing reports are byte-identical at 1/2/4
    // workers, and match the central replica bit for bit.
    let reference = run_stealing(1);
    assert_eq!(reference.len(), PARENTS);
    assert!(reference.iter().all(|r| r.len() == SUBTASKS * 8));
    for workers in [2usize, 4] {
        assert_eq!(
            run_stealing(workers),
            reference,
            "stealing changed job reports at {workers} workers"
        );
    }
    assert_eq!(
        run_central(headline_workers),
        reference,
        "central replica disagrees with the stealing executor"
    );

    // Wall clock: min over interleaved samples (cancels machine drift),
    // each sample `reps` back-to-back fan-outs — one fan-out is ms-scale,
    // too short to time against scheduler jitter.
    let reps = if quick { 5 } else { 10 };
    let (mut steal_wall, mut central_wall) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..reps {
            assert_eq!(run_stealing(headline_workers), reference);
        }
        steal_wall = steal_wall.min(start.elapsed().as_secs_f64() / reps as f64);

        let start = Instant::now();
        for _ in 0..reps {
            assert_eq!(run_central(headline_workers), reference);
        }
        central_wall = central_wall.min(start.elapsed().as_secs_f64() / reps as f64);
    }

    // The acceptance bar: queue handoff no longer dominates — the
    // stealing pool beats the central-queue discipline on its worst-case
    // regime even on a small host.
    assert!(
        steal_wall < central_wall,
        "work-stealing ({steal_wall:.4}s) must beat the central queue ({central_wall:.4}s)"
    );

    println!(
        "BENCH_exec_contended {{\"shape\":{{\"parents\":{PARENTS},\"subtasks_per_parent\":{SUBTASKS},\
         \"tasks\":{},\"rounds_per_subtask\":{ROUNDS}}},\"quick\":{quick},\"cores\":{cores},\
         \"workers\":{headline_workers},\"samples\":{samples},\"reps_per_sample\":{reps},\
         \"wall_seconds\":{{\"work_stealing\":{steal_wall:.4},\"central_queue_emulation\":{central_wall:.4}}},\
         \"speedup\":{:.3},\
         \"byte_identical_reports\":\"asserted: stealing 1/2/4 workers and central replica all equal\",\
         \"emulation\":\"old handoff re-created in-bench: one shared Mutex<VecDeque>+condvar, nested push_front \
         via ambient TLS, unconditional notify_one per push, owner help loop re-locking and position-scanning \
         the whole queue per task\"}}",
        PARENTS * (SUBTASKS + 1),
        central_wall / steal_wall,
    );
}

criterion_group!(benches, report_contended_fan_out);
criterion_main!(benches);
