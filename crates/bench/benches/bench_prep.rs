//! Intra-solve prep-sharding bench: ONE large instance, solved end to end
//! at 1, 2 and 4 preparation workers.
//!
//! This is the complement of `bench_batch`: where that suite parallelises
//! *across* jobs, this one shards the preparation step (the dominant cost
//! of a single solve — one exact subset solve per cluster plus one per
//! `S_C` ball) *inside* one job via `SolveConfig::prep_workers`. The
//! reports must be byte-identical at every worker count; only wall-clock
//! time may change.
//!
//! Prints one `BENCH_prep` JSON line with the 1/2/4-worker trajectory —
//! the committed `BENCH_prep.json` baseline at the repo root records one
//! such line together with the host's core count (on a single-core
//! runner the trajectory is flat by construction; the speedup assertions
//! therefore only arm when the host actually has ≥ 4 cores).
//!
//! Run quick (CI smoke): `cargo bench -p dapc-bench --bench bench_prep -- --quick`

use criterion::{criterion_group, criterion_main, Criterion};
use dapc_core::engine::{self, SolveConfig, SolveReport};
use dapc_graph::{gen, GraphBuilder};
use dapc_ilp::problems;
use dapc_ilp::IlpInstance;
use std::time::{Duration, Instant};

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// One large instance shaped for intra-solve sharding: a disjoint union
/// of moderately dense G(n, p) blobs. Every preparation cluster's `S_C`
/// ball saturates at its own blob, so the preparation step consists of
/// many *distinct* medium-hard exact subset solves — the workload the
/// sharded annotation pass spreads across workers.
fn large_instance(blobs: usize, blob_n: usize, p: f64) -> IlpInstance {
    let mut rng = gen::seeded_rng(42);
    let mut b = GraphBuilder::new(blobs * blob_n);
    for blob in 0..blobs {
        let off = (blob * blob_n) as u32;
        let g = gen::gnp(blob_n, p, &mut rng);
        for (u, v) in g.edges() {
            b.add_edge(u + off, v + off);
        }
    }
    problems::max_independent_set_unweighted(&b.build())
}

fn solve_once(ilp: &IlpInstance, workers: usize) -> (SolveReport, Duration) {
    let cfg = SolveConfig::new().eps(0.3).seed(7).prep_workers(workers);
    let start = Instant::now();
    let report = engine::solve("three-phase", ilp, &cfg).expect("three-phase is registered");
    (report, start.elapsed())
}

/// The acceptance measurement: the 1/2/4-worker wall-clock trajectory on
/// one large instance, with byte-identity asserted between every pair.
fn report_prep_sharding(_c: &mut Criterion) {
    // Sized so the preparation step dominates (~95% of the solve: the
    // later phases replay its memoised subset solves) and each blob's
    // exact solve is ms-scale — the shape intra-solve sharding targets.
    let quick = quick_mode();
    let (blobs, blob_n, p, samples) = if quick {
        (8, 40, 0.12, 1)
    } else {
        (12, 48, 0.10, 2)
    };
    let ilp = large_instance(blobs, blob_n, p);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut walls: Vec<(usize, f64)> = Vec::new();
    let mut baseline: Option<SolveReport> = None;
    for workers in [1usize, 2, 4] {
        let mut best = f64::INFINITY;
        for _ in 0..samples.max(1) {
            let (report, wall) = solve_once(&ilp, workers);
            match &baseline {
                None => baseline = Some(report),
                Some(b) => assert_eq!(
                    b, &report,
                    "prep sharding at {workers} workers changed the report"
                ),
            }
            best = best.min(wall.as_secs_f64());
        }
        walls.push((workers, best));
    }
    let wall_of = |w: usize| walls.iter().find(|(k, _)| *k == w).expect("measured").1;
    let speedup2 = wall_of(1) / wall_of(2);
    let speedup4 = wall_of(1) / wall_of(4);
    println!(
        "BENCH_prep {{\"instance\":{{\"blobs\":{blobs},\"blob_n\":{blob_n},\"p\":{p}}},\
         \"quick\":{quick},\"cores\":{cores},\
         \"wall_seconds\":{{\"w1\":{:.4},\"w2\":{:.4},\"w4\":{:.4}}},\
         \"speedup\":{{\"w2\":{speedup2:.2},\"w4\":{speedup4:.2}}}}}",
        wall_of(1),
        wall_of(2),
        wall_of(4),
    );
    // The ≥ 2× acceptance target needs real cores AND the full-size
    // instance: quick mode (the CI smoke, single sample, shared noisy
    // VMs) only verifies byte-identity and the absence of a gross
    // sharding tax, everywhere.
    if cores >= 4 && !quick {
        assert!(
            speedup4 >= 2.0,
            "4 prep workers on {cores} cores must give ≥ 2×, got {speedup4:.2}×"
        );
    } else {
        assert!(
            speedup4 >= 0.4,
            "sharding tax on a {cores}-core host exceeded 2.5×: {speedup4:.2}×"
        );
    }
}

/// Criterion timings for the individual worker counts (median over a few
/// samples; useful for commit-to-commit comparison on one machine).
fn bench_prep_workers(c: &mut Criterion) {
    let (blobs, blob_n, p) = if quick_mode() {
        (6, 36, 0.12)
    } else {
        (8, 40, 0.12)
    };
    let ilp = large_instance(blobs, blob_n, p);
    let mut group = c.benchmark_group("prep");
    group.sample_size(2);
    for workers in [1usize, 2, 4] {
        group.bench_function(format!("three_phase_{workers}w"), |b| {
            b.iter(|| solve_once(&ilp, workers))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_prep_workers, report_prep_sharding);
criterion_main!(benches);
