//! The `tables` shard runner's exit-code triage: a supervising
//! coordinator sees nothing but an exit status, so corrupt snapshot
//! bytes (never worth a retry) must die with a different code than
//! transient I/O trouble (always worth one). The mapping itself lives in
//! `dapc_serve::exit`; these tests pin the shard runner to it, both at
//! the library layer and through the real binary.

use dapc_bench::shard::read_shard_file;
use dapc_serve::exit;
use std::process::{Command, Stdio};

const TABLES: &str = env!("CARGO_BIN_EXE_tables");

#[test]
fn shard_file_failures_classify_by_retryability() {
    // Corrupt bytes behind a valid magic: InvalidData, not retryable.
    let err = read_shard_file(&b"DAPCSHF\x01garbage follows the magic"[..])
        .expect_err("corrupt shard file must not load");
    assert_eq!(exit::classify(&err), exit::EXIT_BAD_SNAPSHOT, "{err}");
    assert!(!exit::is_retryable(Some(exit::classify(&err))));

    // Truncation is corruption under the all-or-nothing discipline.
    let err = read_shard_file(&b"DAPCSHF"[..]).expect_err("truncated magic must not load");
    assert_eq!(exit::classify(&err), exit::EXIT_BAD_SNAPSHOT, "{err}");

    // A missing file is the filesystem's problem, not the bytes' —
    // retryable.
    let err =
        std::fs::File::open("/definitely/no/such/shard.bin").expect_err("the file must not exist");
    assert_eq!(exit::classify(&err), exit::EXIT_IO, "{err}");
    assert!(exit::is_retryable(Some(exit::EXIT_IO)));
}

#[test]
fn merging_a_missing_shard_file_exits_with_the_io_code() {
    let status = Command::new(TABLES)
        .args(["--quick", "--merge-shards", "/definitely/no/such/shard.bin"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run tables");
    assert_eq!(status.code(), Some(exit::EXIT_IO), "{status:?}");
}

#[test]
fn merging_a_corrupt_shard_file_exits_with_the_bad_snapshot_code() {
    let dir = std::env::temp_dir();
    let torn = dir.join(format!("tables-torn-{}.bin", std::process::id()));
    // A valid magic followed by garbage: the loader must reject it and
    // the binary must die with the corrupt-input code, not the I/O one.
    std::fs::write(&torn, b"DAPCSHF\x01garbage").expect("write torn shard file");
    let status = Command::new(TABLES)
        .arg("--quick")
        .arg("--merge-shards")
        .arg(&torn)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run tables");
    assert_eq!(status.code(), Some(exit::EXIT_BAD_SNAPSHOT), "{status:?}");
    std::fs::remove_file(&torn).ok();
}

#[test]
fn emitting_to_an_impossible_path_exits_with_the_io_code() {
    let status = Command::new(TABLES)
        .args([
            "--quick",
            "--shard",
            "0/2",
            "--emit-shard",
            "/definitely/no/such/dir/shard.bin",
            "e9", // not a batch experiment: no solving before the create fails
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run tables");
    assert_eq!(status.code(), Some(exit::EXIT_IO), "{status:?}");
}
