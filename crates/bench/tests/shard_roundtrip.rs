//! The shard-mode `Runner` protocol, in-process: emitting two shards,
//! shipping them through the shard-file byte format, and merging must
//! reproduce the single-process aggregation bit for bit (timings aside)
//! — the same protocol CI exercises across real processes via
//! `tables --shard i/n --emit-shard` / `--merge-shards`.

use dapc_bench::shard::{read_shard_file, write_shard_file, Runner};
use dapc_bench::Profile;
use dapc_graph::gen;
use dapc_ilp::problems;
use dapc_runtime::{Corpus, GroupSummary, PrepCache, RuntimeConfig};

/// The two corpora of a miniature "experiment" — every shard process
/// must issue the same solve calls in the same order.
fn corpora() -> [Corpus; 2] {
    [
        Corpus::builder()
            .instance(
                "MIS/cycle12",
                problems::max_independent_set_unweighted(&gen::cycle(12)),
            )
            .instance(
                "VC/cycle10",
                problems::min_vertex_cover_unweighted(&gen::cycle(10)),
            )
            .backend("three-phase")
            .backend("greedy")
            .eps(0.3)
            .seeds(0..3)
            .build(),
        Corpus::builder()
            .instance(
                "DS/cycle9",
                problems::min_dominating_set_unweighted(&gen::cycle(9)),
            )
            .backend("bnb")
            .eps(0.2)
            .seeds(0..2)
            .build(),
    ]
}

fn sans_micros(groups: &[GroupSummary]) -> Vec<GroupSummary> {
    groups
        .iter()
        .cloned()
        .map(|mut g| {
            g.micros = 0;
            g
        })
        .collect()
}

#[test]
fn emit_ship_merge_equals_single_process() {
    let rt = RuntimeConfig::new().jobs(2);

    // The reference: one process, the Single runner.
    let single = Runner::single(rt.clone());
    assert!(single.rendering());
    let reference: Vec<_> = corpora()
        .iter()
        .map(|c| single.solve(c).expect("single mode returns reports"))
        .collect();

    // Two cooperating "processes" emit their shard files (through the
    // real byte format, as CI does across actual processes).
    let mut files = Vec::new();
    for shard in 0..2 {
        let runner = Runner::emit(rt.clone(), shard, 2);
        assert!(!runner.rendering());
        for corpus in &corpora() {
            assert!(runner.solve(corpus).is_none(), "emit mode must not render");
        }
        let mut bytes = Vec::new();
        write_shard_file(
            &mut bytes,
            Profile::Quick,
            "mini",
            shard,
            2,
            &runner.into_emitted(),
        )
        .expect("write to a Vec");
        files.push(bytes);
    }

    // The merging invocation: verify headers, merge, compare.
    let mut queues = Vec::new();
    for (shard, bytes) in files.iter().enumerate() {
        let file = read_shard_file(bytes.as_slice()).expect("read back");
        assert_eq!(file.profile, Profile::Quick);
        assert_eq!(file.ids, "mini");
        assert_eq!((file.shard, file.shards), (shard, 2));
        assert_eq!(file.reports.len(), corpora().len());
        queues.push(file.reports);
    }
    let merged_runner = Runner::merge(rt, queues);
    assert!(merged_runner.rendering());
    for (corpus, reference) in corpora().iter().zip(&reference) {
        let merged = merged_runner
            .solve(corpus)
            .expect("merge mode returns reports");
        assert_eq!(merged.jobs, reference.jobs);
        assert_eq!(
            sans_micros(&merged.groups),
            sans_micros(&reference.groups),
            "merged aggregation diverged from the single process"
        );
    }
    merged_runner.assert_drained();
}

#[test]
fn emit_mode_supports_warm_caches_across_corpora() {
    // E10's pattern: several corpora of one family share a cache; the
    // emit path must accept it exactly like the single path.
    let rt = RuntimeConfig::new();
    let cache = PrepCache::new();
    let runner = Runner::emit(rt, 0, 2);
    for corpus in &corpora() {
        assert!(runner.solve_with_cache(corpus, &cache).is_none());
    }
    assert_eq!(runner.into_emitted().len(), 2);
    assert!(cache.stats().misses > 0, "the shard populated the cache");
}

#[test]
#[should_panic(expected = "ran out of reports")]
fn merging_short_shard_files_is_caught() {
    let rt = RuntimeConfig::new();
    let runner = Runner::emit(rt.clone(), 0, 1);
    let [first, _] = corpora();
    runner.solve(&first); // only one of the two expected calls
    let merged = Runner::merge(rt, vec![runner.into_emitted()]);
    let [a, b] = corpora();
    let _ = merged.solve(&a);
    let _ = merged.solve(&b); // the file has nothing left
}

#[test]
#[should_panic(expected = "different corpus")]
fn merging_misaligned_corpora_is_caught() {
    let rt = RuntimeConfig::new();
    let runner = Runner::emit(rt.clone(), 0, 1);
    let [first, second] = corpora();
    runner.solve(&first);
    let merged = Runner::merge(rt, vec![runner.into_emitted()]);
    let _ = merged.solve(&second); // recorded for `first`
}

#[test]
fn truncated_shard_files_error_cleanly() {
    let rt = RuntimeConfig::new();
    let runner = Runner::emit(rt, 0, 1);
    let [first, _] = corpora();
    runner.solve(&first);
    let mut bytes = Vec::new();
    write_shard_file(
        &mut bytes,
        Profile::Full,
        "e3",
        0,
        1,
        &runner.into_emitted(),
    )
    .expect("write to a Vec");
    for cut in 0..bytes.len() {
        assert!(
            read_shard_file(&bytes[..cut]).is_err(),
            "prefix of {cut} bytes must not load"
        );
    }
    assert!(read_shard_file(bytes.as_slice()).is_ok());
    // Appended garbage (e.g. concatenated shard files) is corruption too.
    let mut appended = bytes.clone();
    appended.push(0xAA);
    let err = read_shard_file(appended.as_slice()).expect_err("must reject trailing bytes");
    assert!(err.to_string().contains("trailing"), "{err}");
}
