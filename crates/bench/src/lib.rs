//! # dapc-bench
//!
//! The experiment harness regenerating every table in `EXPERIMENTS.md`:
//! one function per experiment id (E1–E10, see DESIGN.md §3), each
//! returning a rendered markdown table. The `tables` binary drives them:
//!
//! ```sh
//! cargo run -p dapc-bench --release --bin tables             # all
//! cargo run -p dapc-bench --release --bin tables -- e1 e6    # selected
//! cargo run -p dapc-bench --release --bin tables -- --quick  # reduced trials
//! cargo run -p dapc-bench --release --bin tables -- --jobs 4 # 4 concurrent jobs
//! cargo run -p dapc-bench --release --bin tables -- --prep-workers 4 # shard preps
//! ```
//!
//! The ILP experiments (E3–E6, E10) batch through `dapc-runtime`, so
//! `--jobs N` runs up to `N` of their jobs concurrently (shared prep
//! caching included) and `--prep-workers M` additionally shards each
//! job's preparation step — both on the one process-wide executor, in
//! `--quick` mode and `--full` mode alike.
//!
//! Since the shard-merge refactor the same tables can be produced by N
//! cooperating **processes**: each runs `tables --shard i/n --emit-shard
//! PATH` (solving only its contiguous slice of every corpus and
//! recording mergeable aggregator snapshots), then one invocation of
//! `tables --merge-shards PATH..` reassembles them — byte-identical to
//! the single-process output. Criterion wall-clock benches for the
//! substrate live in `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp_ilp;
pub mod exp_ldd;
pub mod exp_lower;
pub mod shard;
pub mod table;

use shard::Runner;

/// Trial-count profile for the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Reduced trial counts (~seconds per experiment).
    Quick,
    /// Full trial counts (the EXPERIMENTS.md numbers).
    Full,
}

impl Profile {
    /// Trials for distribution-tail experiments.
    pub fn tail_trials(self) -> usize {
        match self {
            Profile::Quick => 200,
            Profile::Full => 2000,
        }
    }

    /// Trials for quality experiments.
    pub fn quality_trials(self) -> usize {
        match self {
            Profile::Quick => 5,
            Profile::Full => 20,
        }
    }

    /// Seeds for solver experiments.
    pub fn solver_seeds(self) -> u64 {
        match self {
            Profile::Quick => 3,
            Profile::Full => 10,
        }
    }

    /// Trials for the indistinguishability profiling.
    pub fn profile_trials(self) -> usize {
        match self {
            Profile::Quick => 30,
            Profile::Full => 120,
        }
    }
}

/// Runs one experiment by id (`"e1"`…`"e10"`), returning its table(s).
///
/// `run` executes the experiments that batch through `dapc-runtime`
/// (E3–E6, E10, the [`BATCH_EXPERIMENTS`]): its [`RuntimeConfig`] caps
/// across-corpus concurrency (`jobs`) and intra-solve prep sharding
/// (`prep_workers`) on the shared executor, and its mode decides whether
/// the sweeps run whole ([`Runner::single`]), as one shard of a
/// multi-process split ([`Runner::emit`] — the experiment then returns
/// an empty string, its shard reports are collected on the runner), or
/// from pre-recorded shard files ([`Runner::merge`]). The remaining
/// experiments run inline. No runner choice changes a rendered table —
/// batching *and sharding* are byte-identical to sequential execution.
///
/// # Panics
///
/// Panics on an unknown id.
pub fn run_experiment(id: &str, profile: Profile, run: &Runner) -> String {
    match id {
        "e1" => exp_ldd::e1(profile.quality_trials()),
        "e2" => exp_ldd::e2(profile.tail_trials()),
        "e3" => exp_ilp::e3(profile.solver_seeds(), run),
        "e4" => exp_ilp::e4(profile.solver_seeds(), run),
        "e5" => exp_ilp::e5(profile.solver_seeds(), run),
        "e6" => exp_ilp::e6(run),
        "e7" => {
            let mut s = exp_lower::e7_lps_structure();
            s.push_str(&exp_lower::e7_indistinguishability(
                profile.profile_trials(),
            ));
            s.push_str(&exp_lower::e7_subdivision_tradeoff(
                profile.profile_trials(),
            ));
            s.push_str(&exp_lower::e7_registry_gap(profile.profile_trials()));
            s
        }
        "e8" => exp_ldd::e8(profile.quality_trials()),
        "e9" => exp_ldd::e9(profile.quality_trials()),
        "e10" => exp_ilp::e10(profile.solver_seeds(), run),
        other => panic!("unknown experiment id {other:?} (expected e1..e10)"),
    }
}

/// All experiment ids in order.
pub const ALL_EXPERIMENTS: [&str; 10] =
    ["e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10"];

/// The experiments that batch through `dapc-runtime` and therefore shard
/// across processes; the rest run inline at merge (or single) time.
pub const BATCH_EXPERIMENTS: [&str; 5] = ["e3", "e4", "e5", "e6", "e10"];
