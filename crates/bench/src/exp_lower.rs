//! Experiment E7 — the Theorem 1.4 / Appendix B lower-bound measurements.

use crate::table::{f3, f4, Table};
use dapc_core::engine::SolveConfig;
use dapc_graph::gen;
use dapc_graph::girth::girth;
use dapc_graph::lps::{lps_graph, LpsCase};
use dapc_graph::subdivide::subdivide;
use dapc_lower::capped::greedy_mis_rounds;
use dapc_lower::harness::{indistinguishability, registry_indistinguishability};

/// E7a: the LPS family and the indistinguishability gap as a function of
/// the round cap (Theorem B.2's mechanism).
pub fn e7_indistinguishability(trials: usize) -> String {
    let mut t = Table::new(
        "E7a — Theorem B.2: round-capped MIS on bipartite vs non-bipartite LPS graphs",
        &[
            "rounds",
            "E[|I|]/n bip",
            "E[|I|]/n non",
            "gap",
            "tree-like",
            "bip α/n",
            "non α/n ≤",
        ],
    );
    let bip = lps_graph(5, 13);
    let non = lps_graph(5, 29);
    assert_eq!(bip.case, LpsCase::Bipartite);
    assert_eq!(non.case, LpsCase::NonBipartite);
    let g_min = girth(&bip.graph)
        .unwrap_or(0)
        .min(girth(&non.graph).unwrap_or(0));
    let locality = ((g_min as usize).saturating_sub(1)) / 2;
    let mut rng = gen::seeded_rng(707);
    for rounds in 1..=locality + 2 {
        let rep = indistinguishability(
            &bip.graph,
            &non.graph,
            rounds,
            trials,
            &mut rng,
            greedy_mis_rounds,
        );
        t.row(vec![
            rounds.to_string(),
            f4(rep.mean_a),
            f4(rep.mean_b),
            f4(rep.gap),
            rep.locally_identical.to_string(),
            f3(0.5),
            f3(non.independence_upper_bound() / non.graph.n() as f64),
        ]);
    }
    t.render()
}

/// E7b: approximation quality vs round budget on subdivided cycles — the
/// Theorem B.3 trade-off (reaching (1 − ε) on `G_x` requires Ω(x) more
/// rounds).
pub fn e7_subdivision_tradeoff(trials: usize) -> String {
    let mut t = Table::new(
        "E7b — Theorem B.3 trade-off: rounds needed vs subdivision factor",
        &["x", "n(G_x)", "rounds", "E[|I|]/α", "near-opt?"],
    );
    let base = gen::cycle(30);
    let mut rng = gen::seeded_rng(717);
    for x in [0usize, 1, 2] {
        let sub = subdivide(&base, x);
        let g = &sub.graph;
        let alpha = (g.n() / 2) as f64; // even cycles: α = n/2
        for rounds in [2usize, 4, 8, 16] {
            let mut total = 0usize;
            for _ in 0..trials {
                total += greedy_mis_rounds(g, rounds, &mut rng)
                    .iter()
                    .filter(|&&b| b)
                    .count();
            }
            let ratio = total as f64 / trials as f64 / alpha;
            t.row(vec![
                x.to_string(),
                g.n().to_string(),
                rounds.to_string(),
                f3(ratio),
                (ratio >= 0.95).to_string(),
            ]);
        }
    }
    t.render()
}

/// E7d: the engine-registry backends through the same two-graph
/// experiment — the lower-bound harness now quantifies over the *actual*
/// solvers of the upper-bound theorems (via `dapc_core::engine`) instead
/// of params-level stand-ins. A sound solver separates the odd cycle
/// (α/n < 1/2) from the even one (α/n = 1/2), and the table shows the
/// price: its round count sits above the pair's locality threshold.
pub fn e7_registry_gap(trials: usize) -> String {
    let mut t = Table::new(
        "E7d — Theorem 1.4, algorithm side: registry backends must exceed the locality threshold to separate C17 from C18",
        &[
            "backend",
            "E[|I|]/n C17",
            "E[|I|]/n C18",
            "gap",
            "max rounds",
            "tree-like at max?",
        ],
    );
    let a = gen::cycle(17);
    let b = gen::cycle(18);
    let mut rng = gen::seeded_rng(727);
    let cfg = SolveConfig::new().eps(0.2).ensemble_runs(4);
    for backend in ["three-phase", "gkm", "ensemble", "bnb"] {
        let rep =
            registry_indistinguishability(&a, &b, backend, &cfg, trials.clamp(1, 8), &mut rng);
        t.row(vec![
            backend.to_string(),
            f4(rep.mean_a),
            f4(rep.mean_b),
            f4(rep.gap),
            rep.max_rounds.to_string(),
            rep.locally_identical.to_string(),
        ]);
    }
    t.render()
}

/// E7c: the structural facts of Theorem B.1 for the constructed LPS
/// graphs (degree, size, girth vs bound, bipartiteness, α bound).
pub fn e7_lps_structure() -> String {
    let mut t = Table::new(
        "E7c — Theorem B.1: LPS Ramanujan graph structure",
        &[
            "p",
            "q",
            "n",
            "degree",
            "case",
            "girth",
            "girth bound",
            "α upper bound",
        ],
    );
    for (p, q) in [(5u64, 13u64), (5, 29), (17, 5), (13, 5)] {
        let x = lps_graph(p, q);
        let girth_val = girth(&x.graph);
        t.row(vec![
            p.to_string(),
            q.to_string(),
            x.graph.n().to_string(),
            (p + 1).to_string(),
            format!("{:?}", x.case),
            format!("{:?}", girth_val),
            f3(x.girth_lower_bound),
            f3(x.independence_upper_bound()),
        ]);
    }
    t.render()
}
