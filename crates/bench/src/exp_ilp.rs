//! Experiments E3–E6 and E10 — the packing/covering solvers, the GKM17
//! round-complexity comparison, and the ablations.

use crate::table::{f3, Table};
use dapc_core::covering::approximate_covering;
use dapc_core::gkm::{gkm_solve, GkmParams};
use dapc_core::packing::approximate_packing;
use dapc_core::params::PcParams;
use dapc_graph::{gen, Graph};
use dapc_ilp::{problems, verify, IlpInstance, SolverBudget};
use dapc_local::RoundCost;

fn packing_row(
    t: &mut Table,
    name: &str,
    ilp: &IlpInstance,
    eps: f64,
    seeds: u64,
    params: &PcParams,
) {
    let (opt, _) = verify::optimum(ilp, &params.budget);
    let mut min_ratio = f64::INFINITY;
    let mut sum_ratio = 0.0;
    let mut rounds = 0usize;
    for seed in 0..seeds {
        let out = approximate_packing(ilp, params, &mut gen::seeded_rng(seed));
        assert!(ilp.is_feasible(&out.assignment), "{name}: infeasible");
        let ratio = out.value as f64 / opt.max(1) as f64;
        min_ratio = min_ratio.min(ratio);
        sum_ratio += ratio;
        rounds = out.rounds();
    }
    t.row(vec![
        name.into(),
        ilp.n().to_string(),
        format!("{eps}"),
        opt.to_string(),
        f3(min_ratio),
        f3(sum_ratio / seeds as f64),
        (min_ratio + 1e-9 >= 1.0 - eps).to_string(),
        rounds.to_string(),
    ]);
}

/// E3 (Theorem 1.2): (1 − ε)-approximate MIS across families and ε.
pub fn e3(seeds: u64) -> String {
    let mut t = Table::new(
        "E3 — Theorem 1.2: (1 − ε)-approximate maximum independent set",
        &[
            "family",
            "n",
            "eps",
            "OPT",
            "min ratio",
            "mean ratio",
            "≥1−ε",
            "rounds",
        ],
    );
    let families: Vec<(&str, Graph)> = vec![
        ("cycle", gen::cycle(40)),
        ("grid", gen::grid(6, 7)),
        ("gnp", gen::gnp(44, 0.07, &mut gen::seeded_rng(1))),
        ("tree", gen::random_tree(42, &mut gen::seeded_rng(2))),
        ("reg4", gen::random_regular(40, 4, &mut gen::seeded_rng(3))),
    ];
    for (name, g) in &families {
        for eps in [0.1f64, 0.2, 0.3] {
            let ilp = problems::max_independent_set_unweighted(g);
            let params = PcParams::packing_scaled(eps, g.n() as f64, 0.02, 0.3);
            packing_row(&mut t, name, &ilp, eps, seeds, &params);
        }
    }
    // A weighted and a general instance.
    let g = gen::gnp(36, 0.08, &mut gen::seeded_rng(4));
    let w: Vec<u64> = (0..36).map(|i| 1 + (i as u64 % 5)).collect();
    let ilp = problems::max_independent_set(&g, w);
    let params = PcParams::packing_scaled(0.2, 36.0, 0.02, 0.3);
    packing_row(&mut t, "weighted-gnp", &ilp, 0.2, seeds, &params);
    let ilp = problems::random_packing(30, 20, 3, &mut gen::seeded_rng(5));
    let params = PcParams::packing_scaled(0.2, 30.0, 0.02, 0.3);
    packing_row(&mut t, "general-ILP", &ilp, 0.2, seeds, &params);
    let mut out = t.render();
    out.push_str(&e3_large_scale(seeds.min(5)));
    out
}

/// E3 (large scale): cycles long enough that the carve radius sits *below*
/// the diameter, so Phases 1–3 genuinely delete and the (1 − ε) guarantee
/// is earned rather than inherited from a single whole-graph solve.
fn e3_large_scale(seeds: u64) -> String {
    let mut t = Table::new(
        "E3 (cont.) — large-scale carving: MIS on long cycles (OPT = n/2)",
        &[
            "n",
            "eps",
            "min ratio",
            "mean ratio",
            "≥1−ε",
            "deleted",
            "components",
            "rounds",
        ],
    );
    for n in [1500usize, 3000] {
        for eps in [0.2f64, 0.3] {
            let g = gen::cycle(n);
            let ilp = problems::max_independent_set_unweighted(&g);
            let opt = (n / 2) as u64;
            let params = PcParams::packing_scaled(eps, n as f64, 0.1, 0.3);
            let mut min_ratio = f64::INFINITY;
            let mut sum = 0.0;
            let mut deleted = 0usize;
            let mut components = 0usize;
            let mut rounds = 0usize;
            for seed in 0..seeds {
                let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(seed));
                assert!(ilp.is_feasible(&out.assignment));
                let ratio = out.value as f64 / opt as f64;
                min_ratio = min_ratio.min(ratio);
                sum += ratio;
                deleted = deleted.max(out.stats.deleted_carving + out.stats.deleted_phase3);
                components = components.max(out.stats.components);
                rounds = out.rounds();
            }
            t.row(vec![
                n.to_string(),
                format!("{eps}"),
                f3(min_ratio),
                f3(sum / seeds as f64),
                (min_ratio + 1e-9 >= 1.0 - eps).to_string(),
                deleted.to_string(),
                components.to_string(),
                rounds.to_string(),
            ]);
        }
    }
    t.render()
}

/// E4 (Theorem 1.2): (1 − ε)-approximate maximum matching vs blossom.
pub fn e4(seeds: u64) -> String {
    let mut t = Table::new(
        "E4 — Theorem 1.2: (1 − ε)-approximate maximum matching (OPT by blossom)",
        &[
            "family",
            "n",
            "eps",
            "OPT",
            "min ratio",
            "mean ratio",
            "≥1−ε",
            "rounds",
        ],
    );
    let families: Vec<(&str, Graph)> = vec![
        ("cycle", gen::cycle(36)),
        ("path", gen::path(40)),
        ("gnp", gen::gnp(36, 0.08, &mut gen::seeded_rng(6))),
        ("reg3", gen::random_regular(36, 3, &mut gen::seeded_rng(7))),
        ("grid", gen::grid(5, 7)),
    ];
    for (name, g) in &families {
        for eps in [0.2f64, 0.3] {
            let m = problems::max_matching(g);
            let opt = dapc_ilp::solvers::blossom::max_matching(g).size() as u64;
            let params = PcParams::packing_scaled(eps, g.n() as f64, 0.02, 0.3);
            let mut min_ratio = f64::INFINITY;
            let mut sum = 0.0;
            let mut rounds = 0;
            for seed in 0..seeds {
                let out = approximate_packing(&m.ilp, &params, &mut gen::seeded_rng(seed));
                let ratio = out.value as f64 / opt.max(1) as f64;
                min_ratio = min_ratio.min(ratio);
                sum += ratio;
                rounds = out.rounds();
            }
            t.row(vec![
                name.to_string(),
                g.n().to_string(),
                format!("{eps}"),
                opt.to_string(),
                f3(min_ratio),
                f3(sum / seeds as f64),
                (min_ratio + 1e-9 >= 1.0 - eps).to_string(),
                rounds.to_string(),
            ]);
        }
    }
    t.render()
}

/// E5 (Theorem 1.3): (1 + ε)-approximate covering (VC, DS, k-DS, set
/// cover).
pub fn e5(seeds: u64) -> String {
    let mut t = Table::new(
        "E5 — Theorem 1.3: (1 + ε)-approximate covering problems",
        &[
            "problem",
            "n",
            "eps",
            "OPT",
            "max ratio",
            "mean ratio",
            "≤1+ε",
            "rounds",
        ],
    );
    let budget = SolverBudget::default();
    let mut run = |name: &str, ilp: &IlpInstance, eps: f64| {
        let (opt, opt_exact) = verify::optimum(ilp, &budget);
        let params = PcParams::covering_scaled(eps, ilp.n() as f64, 0.02, 0.3, 1.0);
        let mut max_ratio = 0.0f64;
        let mut sum = 0.0;
        let mut rounds = 0;
        for seed in 0..seeds {
            let out = approximate_covering(ilp, &params, &mut gen::seeded_rng(seed));
            assert!(ilp.is_feasible(&out.assignment), "{name}: infeasible");
            let ratio = out.value as f64 / opt.max(1) as f64;
            max_ratio = max_ratio.max(ratio);
            sum += ratio;
            rounds = out.rounds();
        }
        t.row(vec![
            name.to_string(),
            ilp.n().to_string(),
            format!("{eps}"),
            // Mark budget-limited (unproven) reference optima.
            if opt_exact {
                opt.to_string()
            } else {
                format!("{opt}*")
            },
            f3(max_ratio),
            f3(sum / seeds as f64),
            (max_ratio <= 1.0 + eps + 1e-9).to_string(),
            rounds.to_string(),
        ]);
    };
    for eps in [0.2f64, 0.4] {
        run(
            "VC/cycle",
            &problems::min_vertex_cover_unweighted(&gen::cycle(36)),
            eps,
        );
        run(
            "VC/gnp",
            &problems::min_vertex_cover_unweighted(&gen::gnp(32, 0.1, &mut gen::seeded_rng(8))),
            eps,
        );
        run(
            "DS/cycle",
            &problems::min_dominating_set_unweighted(&gen::cycle(33)),
            eps,
        );
        run(
            "DS/grid",
            &problems::min_dominating_set_unweighted(&gen::grid(5, 6)),
            eps,
        );
        run(
            "2-DS/cycle",
            &problems::k_dominating_set(&gen::cycle(30), 2, vec![1; 30]),
            eps,
        );
    }
    // Weighted VC and a general covering ILP.
    let g = gen::gnp(28, 0.11, &mut gen::seeded_rng(9));
    let w: Vec<u64> = (0..28).map(|i| 1 + (i as u64 % 4) * 2).collect();
    run("weighted-VC", &problems::min_vertex_cover(&g, w), 0.3);
    run(
        "general-ILP",
        &problems::random_covering(24, 16, 3, &mut gen::seeded_rng(10)),
        0.3,
    );
    let mut out = t.render();
    out.push_str(&e5_large_scale(seeds.min(5)));
    out
}

/// E5 (large scale): vertex cover on long cycles with genuine carving
/// (fixing + hyperedge deletion + isolated regions).
fn e5_large_scale(seeds: u64) -> String {
    let mut t = Table::new(
        "E5 (cont.) — large-scale carving: VC on long cycles (OPT = n/2)",
        &[
            "n",
            "eps",
            "max ratio",
            "mean ratio",
            "≤1+ε",
            "fixed w",
            "edges cut",
            "rounds",
        ],
    );
    for n in [1500usize, 3000] {
        for eps in [0.3f64, 0.4] {
            let g = gen::cycle(n);
            let ilp = problems::min_vertex_cover_unweighted(&g);
            let opt = (n / 2) as u64;
            let params = PcParams::covering_scaled(eps, n as f64, 0.3, 0.3, 1.0);
            let mut max_ratio = 0.0f64;
            let mut sum = 0.0;
            let mut fixed = 0u64;
            let mut cut = 0usize;
            let mut rounds = 0usize;
            for seed in 0..seeds {
                let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(seed));
                assert!(ilp.is_feasible(&out.assignment));
                let ratio = out.value as f64 / opt as f64;
                max_ratio = max_ratio.max(ratio);
                sum += ratio;
                fixed = fixed.max(out.stats.fixed_weight);
                cut = cut.max(out.stats.deleted_edges);
                rounds = out.rounds();
            }
            t.row(vec![
                n.to_string(),
                format!("{eps}"),
                f3(max_ratio),
                f3(sum / seeds as f64),
                (max_ratio <= 1.0 + eps + 1e-9).to_string(),
                fixed.to_string(),
                cut.to_string(),
                rounds.to_string(),
            ]);
        }
    }
    t.render()
}

/// E6 (§1.2 vs §1.3): LOCAL round complexity — ours vs GKM17, sweeping n
/// at fixed ε and ε at fixed n.
///
/// Expected shape (and what the table shows): in the **n sweep** the
/// GKM/ours ratio *grows* (log³ n vs log n); in the **ε sweep** at fixed n
/// it *shrinks* — ours pays the extra `log³(1/ε)` factor while both share
/// the `1/ε`, exactly the trade Theorem 1.2 makes to win the `log² n`.
pub fn e6() -> String {
    let mut t = Table::new(
        "E6 — round complexity: Theorem 1.2 (Õ(log n/ε)) vs GKM17 (O(log³ n/ε))",
        &["sweep", "n", "eps", "ours rounds", "GKM rounds", "GKM/ours"],
    );
    // GKM's round bill depends on the random colour count of its network
    // decomposition; average a few seeds to stabilise.
    let gkm_rounds = |ilp: &IlpInstance, eps: f64, n: usize| -> f64 {
        let mut total = 0usize;
        for seed in 0..3u64 {
            total += gkm_solve(
                ilp,
                &GkmParams::new(eps, n as f64, 0.2),
                &mut gen::seeded_rng(seed),
            )
            .rounds();
        }
        total as f64 / 3.0
    };
    let eps = 0.3;
    for n in [32usize, 64, 128, 256, 512] {
        let g = gen::cycle(n);
        let ilp = problems::max_independent_set_unweighted(&g);
        let ours = approximate_packing(
            &ilp,
            &PcParams::packing_scaled(eps, n as f64, 0.02, 0.3),
            &mut gen::seeded_rng(1),
        );
        let gkm = gkm_rounds(&ilp, eps, n);
        t.row(vec![
            "n".into(),
            n.to_string(),
            format!("{eps}"),
            ours.rounds().to_string(),
            format!("{gkm:.0}"),
            f3(gkm / ours.rounds() as f64),
        ]);
    }
    let n = 64usize;
    for eps in [0.4f64, 0.2, 0.1, 0.05] {
        let g = gen::cycle(n);
        let ilp = problems::max_independent_set_unweighted(&g);
        let ours = approximate_packing(
            &ilp,
            &PcParams::packing_scaled(eps, n as f64, 0.02, 0.3),
            &mut gen::seeded_rng(2),
        );
        let gkm = gkm_rounds(&ilp, eps, n);
        t.row(vec![
            "eps".into(),
            n.to_string(),
            format!("{eps}"),
            ours.rounds().to_string(),
            format!("{gkm:.0}"),
            f3(gkm / ours.rounds() as f64),
        ]);
    }
    t.render()
}

/// E10 — ablations called out in DESIGN.md: preparation count, covering
/// iteration budget, and the LDD Phase 2 toggle.
pub fn e10(seeds: u64) -> String {
    let mut t = Table::new(
        "E10 — ablations (prep count, covering t, LDD Phase 2)",
        &[
            "ablation",
            "setting",
            "min/max ratio",
            "mean ratio",
            "rounds",
            "note",
        ],
    );
    // (a) Packing preparation count.
    let g = gen::gnp(36, 0.08, &mut gen::seeded_rng(11));
    let ilp = problems::max_independent_set_unweighted(&g);
    let (opt, _) = verify::optimum(&ilp, &SolverBudget::default());
    for prep in [1usize, 2, 4, 8] {
        let mut params = PcParams::packing_scaled(0.2, 36.0, 0.02, 0.3);
        params.prep_count = prep;
        let mut min_ratio = f64::INFINITY;
        let mut sum = 0.0;
        let mut rounds = 0;
        for seed in 0..seeds {
            let out = approximate_packing(&ilp, &params, &mut gen::seeded_rng(seed));
            let r = out.value as f64 / opt as f64;
            min_ratio = min_ratio.min(r);
            sum += r;
            rounds = out.rounds();
        }
        t.row(vec![
            "packing prep_count".into(),
            prep.to_string(),
            f3(min_ratio),
            f3(sum / seeds as f64),
            rounds.to_string(),
            "paper: 16·ln ñ".into(),
        ]);
    }
    // (b) Covering iteration budget t (the §1.4.3 "skip Phase 2" design).
    let g = gen::cycle(33);
    let ilp = problems::min_dominating_set_unweighted(&g);
    let (opt, _) = verify::optimum(&ilp, &SolverBudget::default());
    for t_slack in [0.0f64, 1.0, 3.0] {
        let params = PcParams::covering_scaled(0.3, 33.0, 0.02, 0.3, t_slack.max(0.01));
        let mut max_ratio = 0.0f64;
        let mut sum = 0.0;
        let mut rounds = 0;
        for seed in 0..seeds {
            let out = approximate_covering(&ilp, &params, &mut gen::seeded_rng(seed));
            let r = out.value as f64 / opt as f64;
            max_ratio = max_ratio.max(r);
            sum += r;
            rounds = out.rounds();
        }
        t.row(vec![
            "covering t_slack".into(),
            format!("{t_slack} (t={})", params.t),
            f3(max_ratio),
            f3(sum / seeds as f64),
            rounds.to_string(),
            "paper: +8".into(),
        ]);
    }
    // (c) LDD Phase 2 on/off.
    use dapc_decomp::three_phase::{three_phase_ldd, LddParams};
    let g = gen::gnp(600, 0.01, &mut gen::seeded_rng(12));
    for phase2 in [true, false] {
        let mut params = LddParams::scaled(0.2, 600.0, 0.05);
        params.run_phase2 = phase2;
        let mut worst = 0.0f64;
        let mut sum = 0.0;
        let mut rounds = 0;
        for seed in 0..seeds {
            let out = three_phase_ldd(&g, &params, &mut gen::seeded_rng(seed), None);
            let f = out.decomposition.deleted_fraction();
            worst = worst.max(f);
            sum += f;
            rounds = out.decomposition.rounds();
        }
        t.row(vec![
            "LDD run_phase2".into(),
            phase2.to_string(),
            f3(worst),
            f3(sum / seeds as f64),
            rounds.to_string(),
            "§1.4.1: Phase 2 buys one iteration".into(),
        ]);
    }
    t.render()
}
