//! Experiments E3–E6 and E10 — the packing/covering solvers, the GKM17
//! round-complexity comparison, and the ablations.
//!
//! Since PR 2 every table is produced by `dapc-runtime`: each experiment
//! builds a [`Corpus`] (instances × backends × ε grid × seed range), runs
//! it through the shard-aware [`Runner`], and renders rows from the
//! returned [`GroupSummary`] aggregation — including the worst-seed phase
//! counters ([`dapc_runtime::GroupStats`]), so no table needs the per-job
//! result vector and every table can equally be produced by N cooperating
//! shard processes (`tables --shard i/n` / `--merge-shards`).
//!
//! Structural rule for shard alignment: every experiment issues **all**
//! of its `Runner::solve` calls first and renders after — in emit mode
//! the calls record shard reports and rendering is skipped.

use crate::shard::Runner;
use crate::table::{f3, Table};
use dapc_core::engine::SolveConfig;
use dapc_core::params::ScaleKnobs;
use dapc_graph::{gen, Graph};
use dapc_ilp::problems;
use dapc_runtime::{Corpus, GroupSummary, PrepCache, StreamReport};

fn opt_cell(g: &GroupSummary) -> String {
    match g.opt {
        // Mark budget-limited (unproven) reference optima.
        Some(o) if g.opt_exact => o.to_string(),
        Some(o) => format!("{o}*"),
        None => "-".into(),
    }
}

/// One packing row: worst/mean ratio over the seed sweep of a group.
fn packing_row(t: &mut Table, g: &GroupSummary) {
    assert!(g.feasible, "{}: infeasible seed", g.instance);
    t.row(vec![
        g.instance.clone(),
        g.vars.to_string(),
        format!("{}", g.eps),
        opt_cell(g),
        f3(g.min_ratio.unwrap_or(f64::NAN)),
        f3(g.mean_ratio.unwrap_or(f64::NAN)),
        g.meets_guarantee().to_string(),
        g.rounds_last.to_string(),
    ]);
}

/// E3 (Theorem 1.2): (1 − ε)-approximate MIS across families and ε.
pub fn e3(seeds: u64, run: &Runner) -> String {
    let families: Vec<(&str, Graph)> = vec![
        ("cycle", gen::cycle(40)),
        ("grid", gen::grid(6, 7)),
        ("gnp", gen::gnp(44, 0.07, &mut gen::seeded_rng(1))),
        ("tree", gen::random_tree(42, &mut gen::seeded_rng(2))),
        ("reg4", gen::random_regular(40, 4, &mut gen::seeded_rng(3))),
    ];
    let mut b = Corpus::builder()
        .backend("three-phase")
        .eps_grid([0.1, 0.2, 0.3])
        .seeds(0..seeds);
    for (name, g) in &families {
        b = b.instance(*name, problems::max_independent_set_unweighted(g));
    }
    let main = run.solve(&b.build());
    // A weighted and a general instance.
    let g = gen::gnp(36, 0.08, &mut gen::seeded_rng(4));
    let w: Vec<u64> = (0..36).map(|i| 1 + (i as u64 % 5)).collect();
    let corpus = Corpus::builder()
        .instance("weighted-gnp", problems::max_independent_set(&g, w))
        .instance(
            "general-ILP",
            problems::random_packing(30, 20, 3, &mut gen::seeded_rng(5)),
        )
        .backend("three-phase")
        .eps(0.2)
        .seeds(0..seeds)
        .build();
    let extra = run.solve(&corpus);
    let large = run.solve_without_optima(&e3_large_corpus(seeds.min(5)));
    let (Some(main), Some(extra), Some(large)) = (main, extra, large) else {
        return String::new();
    };

    let mut t = Table::new(
        "E3 — Theorem 1.2: (1 − ε)-approximate maximum independent set",
        &[
            "family",
            "n",
            "eps",
            "OPT",
            "min ratio",
            "mean ratio",
            "≥1−ε",
            "rounds",
        ],
    );
    for g in main.groups.iter().chain(&extra.groups) {
        packing_row(&mut t, g);
    }
    let mut out = t.render();
    out.push_str(&e3_large_render(&large));
    out
}

/// E3 (large scale): cycles long enough that the carve radius sits *below*
/// the diameter, so Phases 1–3 genuinely delete and the (1 − ε) guarantee
/// is earned rather than inherited from a single whole-graph solve.
/// OPT = n/2 is known analytically; the reference solve is skipped.
fn e3_large_corpus(seeds: u64) -> Corpus {
    let mut b = Corpus::builder()
        .backend("three-phase")
        .eps_grid([0.2, 0.3])
        .seeds(0..seeds)
        .base_config(SolveConfig::new().knobs(ScaleKnobs {
            r_scale: 0.1,
            ..ScaleKnobs::default()
        }));
    for n in [1500usize, 3000] {
        b = b.instance(
            format!("cycle{n}"),
            problems::max_independent_set_unweighted(&gen::cycle(n)),
        );
    }
    b.build()
}

fn e3_large_render(report: &StreamReport) -> String {
    let mut t = Table::new(
        "E3 (cont.) — large-scale carving: MIS on long cycles (OPT = n/2)",
        &[
            "n",
            "eps",
            "min ratio",
            "mean ratio",
            "≥1−ε",
            "deleted",
            "components",
            "rounds",
        ],
    );
    for g in &report.groups {
        assert!(g.feasible, "{}: infeasible seed", g.instance);
        let opt = (g.vars / 2) as f64;
        let min_ratio = g.min_value as f64 / opt;
        t.row(vec![
            g.vars.to_string(),
            format!("{}", g.eps),
            f3(min_ratio),
            f3(g.mean_value / opt),
            (min_ratio + 1e-9 >= 1.0 - g.eps).to_string(),
            g.stats.deleted.to_string(),
            g.stats.components.to_string(),
            g.rounds_last.to_string(),
        ]);
    }
    t.render()
}

/// E4 (Theorem 1.2): (1 − ε)-approximate maximum matching vs blossom.
pub fn e4(seeds: u64, run: &Runner) -> String {
    let families: Vec<(&str, Graph)> = vec![
        ("cycle", gen::cycle(36)),
        ("path", gen::path(40)),
        ("gnp", gen::gnp(36, 0.08, &mut gen::seeded_rng(6))),
        ("reg3", gen::random_regular(36, 3, &mut gen::seeded_rng(7))),
        ("grid", gen::grid(5, 7)),
    ];
    let mut b = Corpus::builder()
        .backend("three-phase")
        .eps_grid([0.2, 0.3])
        .seeds(0..seeds);
    // Blossom is exact and independent of the ILP solver stack, so it
    // both supplies the OPT column and cross-checks the runtime's
    // branch-and-bound reference.
    let mut by_family = Vec::new();
    for (name, g) in &families {
        by_family.push((
            name.to_string(),
            g.n(),
            dapc_ilp::solvers::blossom::max_matching(g).size() as u64,
        ));
        b = b.instance(*name, problems::max_matching(g).ilp);
    }
    let Some(report) = run.solve(&b.build()) else {
        return String::new();
    };

    let mut t = Table::new(
        "E4 — Theorem 1.2: (1 − ε)-approximate maximum matching (OPT by blossom)",
        &[
            "family",
            "n",
            "eps",
            "OPT",
            "min ratio",
            "mean ratio",
            "≥1−ε",
            "rounds",
        ],
    );
    for g in &report.groups {
        assert!(g.feasible, "{}: infeasible seed", g.instance);
        // Matching variables are edges; report the graph's vertex count.
        let &(_, n, blossom_opt) = by_family
            .iter()
            .find(|(name, _, _)| *name == g.instance)
            .expect("family registered");
        if g.opt_exact {
            assert_eq!(g.opt, Some(blossom_opt), "{}: B&B vs blossom", g.instance);
        }
        t.row(vec![
            g.instance.clone(),
            n.to_string(),
            format!("{}", g.eps),
            blossom_opt.to_string(),
            f3(g.min_value as f64 / blossom_opt.max(1) as f64),
            f3(g.mean_value / blossom_opt.max(1) as f64),
            (g.min_value as f64 / blossom_opt.max(1) as f64 + 1e-9 >= 1.0 - g.eps).to_string(),
            g.rounds_last.to_string(),
        ]);
    }
    t.render()
}

/// E5 (Theorem 1.3): (1 + ε)-approximate covering (VC, DS, k-DS, set
/// cover).
pub fn e5(seeds: u64, run: &Runner) -> String {
    let corpus = Corpus::builder()
        .instance(
            "VC/cycle",
            problems::min_vertex_cover_unweighted(&gen::cycle(36)),
        )
        .instance(
            "VC/gnp",
            problems::min_vertex_cover_unweighted(&gen::gnp(32, 0.1, &mut gen::seeded_rng(8))),
        )
        .instance(
            "DS/cycle",
            problems::min_dominating_set_unweighted(&gen::cycle(33)),
        )
        .instance(
            "DS/grid",
            problems::min_dominating_set_unweighted(&gen::grid(5, 6)),
        )
        .instance(
            "2-DS/cycle",
            problems::k_dominating_set(&gen::cycle(30), 2, vec![1; 30]),
        )
        .backend("three-phase")
        .eps_grid([0.2, 0.4])
        .seeds(0..seeds)
        .build();
    let names: Vec<String> = corpus
        .instance_names()
        .into_iter()
        .map(str::to_string)
        .collect();
    let main = run.solve(&corpus);
    // Weighted VC and a general covering ILP.
    let g = gen::gnp(28, 0.11, &mut gen::seeded_rng(9));
    let w: Vec<u64> = (0..28).map(|i| 1 + (i as u64 % 4) * 2).collect();
    let corpus = Corpus::builder()
        .instance("weighted-VC", problems::min_vertex_cover(&g, w))
        .instance(
            "general-ILP",
            problems::random_covering(24, 16, 3, &mut gen::seeded_rng(10)),
        )
        .backend("three-phase")
        .eps(0.3)
        .seeds(0..seeds)
        .build();
    let extra = run.solve(&corpus);
    let large = run.solve_without_optima(&e5_large_corpus(seeds.min(5)));
    let (Some(main), Some(extra), Some(large)) = (main, extra, large) else {
        return String::new();
    };

    let mut t = Table::new(
        "E5 — Theorem 1.3: (1 + ε)-approximate covering problems",
        &[
            "problem",
            "n",
            "eps",
            "OPT",
            "max ratio",
            "mean ratio",
            "≤1+ε",
            "rounds",
        ],
    );
    let covering_row = |t: &mut Table, g: &GroupSummary| {
        assert!(g.feasible, "{}: infeasible seed", g.instance);
        t.row(vec![
            g.instance.clone(),
            g.vars.to_string(),
            format!("{}", g.eps),
            opt_cell(g),
            f3(g.max_ratio.unwrap_or(f64::NAN)),
            f3(g.mean_ratio.unwrap_or(f64::NAN)),
            g.meets_guarantee().to_string(),
            g.rounds_last.to_string(),
        ]);
    };
    // Legacy row order is ε-major.
    for eps in [0.2f64, 0.4] {
        for name in &names {
            let g = main
                .group(name, "three-phase", eps)
                .expect("group for every cell");
            covering_row(&mut t, g);
        }
    }
    for g in &extra.groups {
        covering_row(&mut t, g);
    }
    let mut out = t.render();
    out.push_str(&e5_large_render(&large));
    out
}

/// E5 (large scale): vertex cover on long cycles with genuine carving
/// (fixing + hyperedge deletion + isolated regions). OPT = n/2 is known
/// analytically.
fn e5_large_corpus(seeds: u64) -> Corpus {
    let mut b = Corpus::builder()
        .backend("three-phase")
        .eps_grid([0.3, 0.4])
        .seeds(0..seeds)
        .base_config(SolveConfig::new().knobs(ScaleKnobs {
            r_scale: 0.3,
            ..ScaleKnobs::default()
        }));
    for n in [1500usize, 3000] {
        b = b.instance(
            format!("cycle{n}"),
            problems::min_vertex_cover_unweighted(&gen::cycle(n)),
        );
    }
    b.build()
}

fn e5_large_render(report: &StreamReport) -> String {
    let mut t = Table::new(
        "E5 (cont.) — large-scale carving: VC on long cycles (OPT = n/2)",
        &[
            "n",
            "eps",
            "max ratio",
            "mean ratio",
            "≤1+ε",
            "fixed w",
            "edges cut",
            "rounds",
        ],
    );
    for g in &report.groups {
        assert!(g.feasible, "{}: infeasible seed", g.instance);
        let opt = (g.vars / 2) as f64;
        let max_ratio = g.max_value as f64 / opt;
        t.row(vec![
            g.vars.to_string(),
            format!("{}", g.eps),
            f3(max_ratio),
            f3(g.mean_value / opt),
            (max_ratio <= 1.0 + g.eps + 1e-9).to_string(),
            g.stats.fixed_weight.to_string(),
            g.stats.deleted_edges.to_string(),
            g.rounds_last.to_string(),
        ]);
    }
    t.render()
}

/// E6 (§1.2 vs §1.3): LOCAL round complexity — ours vs GKM17, sweeping n
/// at fixed ε and ε at fixed n.
///
/// Expected shape (and what the table shows): in the **n sweep** the
/// GKM/ours ratio *grows* (log³ n vs log n); in the **ε sweep** at fixed n
/// it *shrinks* — ours pays the extra `log³(1/ε)` factor while both share
/// the `1/ε`, exactly the trade Theorem 1.2 makes to win the `log² n`.
/// Both backends' round bills are averaged over the same three seeds.
pub fn e6(run: &Runner) -> String {
    let mut b = Corpus::builder()
        .backend("three-phase")
        .backend("gkm")
        .eps(0.3)
        .seeds(0..3);
    let ns = [32usize, 64, 128, 256, 512];
    for n in ns {
        b = b.instance(
            format!("cycle{n}"),
            problems::max_independent_set_unweighted(&gen::cycle(n)),
        );
    }
    let n_sweep = run.solve_without_optima(&b.build());
    let corpus = Corpus::builder()
        .instance(
            "cycle64",
            problems::max_independent_set_unweighted(&gen::cycle(64)),
        )
        .backend("three-phase")
        .backend("gkm")
        .eps_grid([0.4, 0.2, 0.1, 0.05])
        .seeds(0..3)
        .build();
    let eps_sweep = run.solve_without_optima(&corpus);
    let (Some(n_sweep), Some(eps_sweep)) = (n_sweep, eps_sweep) else {
        return String::new();
    };

    let mut t = Table::new(
        "E6 — round complexity: Theorem 1.2 (Õ(log n/ε)) vs GKM17 (O(log³ n/ε))",
        &["sweep", "n", "eps", "ours rounds", "GKM rounds", "GKM/ours"],
    );
    let row = |t: &mut Table, sweep: &str, report: &StreamReport, name: &str, eps: f64| {
        let ours = report
            .group(name, "three-phase", eps)
            .expect("three-phase group");
        let gkm = report.group(name, "gkm", eps).expect("gkm group");
        t.row(vec![
            sweep.into(),
            ours.vars.to_string(),
            format!("{eps}"),
            format!("{:.0}", ours.mean_rounds),
            format!("{:.0}", gkm.mean_rounds),
            f3(gkm.mean_rounds / ours.mean_rounds),
        ]);
    };
    for n in ns {
        row(&mut t, "n", &n_sweep, &format!("cycle{n}"), 0.3);
    }
    for eps in [0.4f64, 0.2, 0.1, 0.05] {
        row(&mut t, "eps", &eps_sweep, "cycle64", eps);
    }
    t.render()
}

/// E10 — ablations called out in DESIGN.md: preparation count, covering
/// iteration budget, and the LDD Phase 2 toggle.
pub fn e10(seeds: u64, run: &Runner) -> String {
    // (a) Packing preparation count, via the engine's prep_count override.
    // The ablation rows all sweep the same (instance, budget) family, so
    // one warm PrepCache serves every row.
    let prep_settings = [1usize, 2, 4, 8];
    let cache = PrepCache::new();
    let g = gen::gnp(36, 0.08, &mut gen::seeded_rng(11));
    let ilp = problems::max_independent_set_unweighted(&g);
    let mut prep_reports = Vec::new();
    for prep in prep_settings {
        let corpus = Corpus::builder()
            .instance("gnp36", ilp.clone())
            .backend("three-phase")
            .eps(0.2)
            .seeds(0..seeds)
            .base_config(SolveConfig::new().prep_count(prep))
            .build();
        prep_reports.push(run.solve_with_cache(&corpus, &cache));
    }
    // (b) Covering iteration budget t (the §1.4.3 "skip Phase 2" design).
    let t_settings = [0.0f64, 1.0, 3.0];
    let cache = PrepCache::new();
    let g = gen::cycle(33);
    let ilp = problems::min_dominating_set_unweighted(&g);
    let mut t_reports = Vec::new();
    for &t_slack in &t_settings {
        let cfg = SolveConfig::new().knobs(ScaleKnobs {
            covering_t_slack: t_slack.max(0.01),
            ..ScaleKnobs::default()
        });
        let t_value = cfg.covering_params(33).t;
        let corpus = Corpus::builder()
            .instance("DS/cycle33", ilp.clone())
            .backend("three-phase")
            .eps(0.3)
            .seeds(0..seeds)
            .base_config(cfg)
            .build();
        t_reports.push((t_value, run.solve_with_cache(&corpus, &cache)));
    }
    let Some(prep_reports) = prep_reports.into_iter().collect::<Option<Vec<_>>>() else {
        return String::new();
    };
    let Some(t_reports) = t_reports
        .into_iter()
        .map(|(t, r)| r.map(|r| (t, r)))
        .collect::<Option<Vec<_>>>()
    else {
        return String::new();
    };

    let mut t = Table::new(
        "E10 — ablations (prep count, covering t, LDD Phase 2)",
        &[
            "ablation",
            "setting",
            "min/max ratio",
            "mean ratio",
            "rounds",
            "note",
        ],
    );
    for (prep, report) in prep_settings.iter().zip(&prep_reports) {
        let g = &report.groups[0];
        t.row(vec![
            "packing prep_count".into(),
            prep.to_string(),
            f3(g.min_ratio.unwrap_or(f64::NAN)),
            f3(g.mean_ratio.unwrap_or(f64::NAN)),
            g.rounds_last.to_string(),
            "paper: 16·ln ñ".into(),
        ]);
    }
    for (t_slack, (t_value, report)) in t_settings.iter().zip(&t_reports) {
        let g = &report.groups[0];
        t.row(vec![
            "covering t_slack".into(),
            format!("{t_slack} (t={t_value})"),
            f3(g.max_ratio.unwrap_or(f64::NAN)),
            f3(g.mean_ratio.unwrap_or(f64::NAN)),
            g.rounds_last.to_string(),
            "paper: +8".into(),
        ]);
    }
    // (c) LDD Phase 2 on/off — a decomposition-level ablation below the
    // ILP engine, so it keeps driving the LDD directly (and runs inline
    // in every Runner mode that renders).
    use dapc_decomp::three_phase::{three_phase_ldd, LddParams};
    use dapc_local::RoundCost;
    let g = gen::gnp(600, 0.01, &mut gen::seeded_rng(12));
    for phase2 in [true, false] {
        let mut params = LddParams::scaled(0.2, 600.0, 0.05);
        params.run_phase2 = phase2;
        let mut worst = 0.0f64;
        let mut sum = 0.0;
        let mut rounds = 0;
        for seed in 0..seeds {
            let out = three_phase_ldd(&g, &params, &mut gen::seeded_rng(seed), None);
            let f = out.decomposition.deleted_fraction();
            worst = worst.max(f);
            sum += f;
            rounds = out.decomposition.rounds();
        }
        t.row(vec![
            "LDD run_phase2".into(),
            phase2.to_string(),
            f3(worst),
            f3(sum / seeds as f64),
            rounds.to_string(),
            "§1.4.1: Phase 2 buys one iteration".into(),
        ]);
    }
    t.render()
}
