//! Shard-mode execution of the batch experiments: the plumbing behind
//! `tables --shard i/n --emit-shard PATH` and `tables --merge-shards
//! PATHS..`.
//!
//! Every batch experiment (E3–E6, E10) issues its `solve` calls through
//! one [`Runner`], which executes them in one of three modes:
//!
//! * **Single** — the classic in-process path: run the whole corpus,
//!   return the [`StreamReport`] the experiment renders its rows from.
//! * **Emit** — run only this process's contiguous shard of each corpus
//!   ([`dapc_runtime::solve_shard`]) and record the mergeable
//!   [`ShardReport`]; `solve` returns `None`, so the experiment skips
//!   rendering (a shard's summary is partial by construction). The
//!   recorded reports are written to a shard file.
//! * **Merge** — run nothing: pop the next [`ShardReport`] from every
//!   shard file (the call sequence is deterministic, so the k-th `solve`
//!   call of every cooperating process solved the same corpus), merge
//!   them, and return the finished [`StreamReport`] — bit-identical to
//!   the Single-mode aggregation, so the rendered tables diff clean.
//!
//! Experiments therefore follow one structural rule: **issue every
//! `solve` call first, render after** — in Emit mode all calls must
//! happen (to keep the shard files aligned across processes) even though
//! no rendering follows.

use crate::Profile;
use dapc_runtime::{
    snap, solve_many_streaming_with_cache, solve_shard_with_cache, Corpus, PrepCache,
    RuntimeConfig, ShardReport, StreamReport,
};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// Magic + version prefix of the shard *file* format (a header naming
/// the run it belongs to, then the recorded [`ShardReport`]s in call
/// order): seven identifying bytes and a format version byte. Version 2
/// appends a whole-file integrity seal ([`snap::seal`]).
pub const SHARD_FILE_MAGIC: &[u8; 8] = dapc_core::snapmagic::SHARD_FILE.bytes;

/// How a [`Runner`] executes the batch experiments' `solve` calls.
enum Mode {
    /// Run everything in this process.
    Single,
    /// Run shard `shard` of `shards` of every corpus, recording the
    /// reports.
    Emit {
        shard: usize,
        shards: usize,
        reports: Vec<ShardReport>,
    },
    /// Replay recorded reports, one queue per cooperating shard file.
    Merge { queues: Vec<VecDeque<ShardReport>> },
}

/// Executes the batch experiments' corpus sweeps in Single, Emit or
/// Merge mode (see the module docs).
pub struct Runner {
    rt: RuntimeConfig,
    mode: RefCell<Mode>,
}

impl Runner {
    /// The classic single-process runner.
    pub fn single(rt: RuntimeConfig) -> Self {
        Runner {
            rt,
            mode: RefCell::new(Mode::Single),
        }
    }

    /// A runner that solves only shard `shard` of `shards` of every
    /// corpus and records the mergeable reports (collect them with
    /// [`Runner::into_emitted`]).
    ///
    /// # Panics
    ///
    /// Panics when `shard >= shards` or `shards == 0`.
    pub fn emit(rt: RuntimeConfig, shard: usize, shards: usize) -> Self {
        assert!(
            shards > 0 && shard < shards,
            "shard {shard}/{shards} out of range"
        );
        Runner {
            rt,
            mode: RefCell::new(Mode::Emit {
                shard,
                shards,
                reports: Vec::new(),
            }),
        }
    }

    /// A runner that merges pre-recorded shard reports: `shards[i]` is
    /// the report sequence of cooperating process `i`, in call order.
    pub fn merge(rt: RuntimeConfig, shards: Vec<Vec<ShardReport>>) -> Self {
        Runner {
            rt,
            mode: RefCell::new(Mode::Merge {
                queues: shards.into_iter().map(VecDeque::from).collect(),
            }),
        }
    }

    /// Whether `solve` returns reports to render (`false` in Emit mode —
    /// experiments must still issue every `solve` call, then skip
    /// rendering).
    pub fn rendering(&self) -> bool {
        !matches!(&*self.mode.borrow(), Mode::Emit { .. })
    }

    /// Runs (or replays) one corpus sweep. Returns `None` in Emit mode.
    ///
    /// # Panics
    ///
    /// In Merge mode, panics when a shard file runs out of reports or
    /// its next report does not belong to `corpus` — the emitting and
    /// merging invocations selected different experiments.
    pub fn solve(&self, corpus: &Corpus) -> Option<StreamReport> {
        self.solve_inner(corpus, &PrepCache::new(), true)
    }

    /// [`Runner::solve`] with the per-instance reference optima disabled
    /// — for corpora whose optimum is known analytically (the ratio
    /// columns are computed by the experiment itself).
    pub fn solve_without_optima(&self, corpus: &Corpus) -> Option<StreamReport> {
        self.solve_inner(corpus, &PrepCache::new(), false)
    }

    /// [`Runner::solve`] against a caller-owned cache, so experiments
    /// sweeping one family across several corpora keep their prep warm
    /// (in Emit mode the cache warms this shard's calls the same way).
    pub fn solve_with_cache(&self, corpus: &Corpus, cache: &PrepCache) -> Option<StreamReport> {
        self.solve_inner(corpus, cache, true)
    }

    fn solve_inner(
        &self,
        corpus: &Corpus,
        cache: &PrepCache,
        reference_optima: bool,
    ) -> Option<StreamReport> {
        let rt = self
            .rt
            .clone()
            .reference_optima(self.rt.reference_optima && reference_optima);
        match &mut *self.mode.borrow_mut() {
            Mode::Single => Some(solve_many_streaming_with_cache(corpus, &rt, cache, |_r| {})),
            Mode::Emit {
                shard,
                shards,
                reports,
            } => {
                reports.push(solve_shard_with_cache(corpus, *shard, *shards, &rt, cache));
                None
            }
            Mode::Merge { queues } => {
                let mut merged: Option<ShardReport> = None;
                for (i, queue) in queues.iter_mut().enumerate() {
                    let report = queue.pop_front().unwrap_or_else(|| {
                        panic!(
                            "shard file {i} ran out of reports — emitted with \
                             different experiments selected?"
                        )
                    });
                    assert_eq!(
                        report.corpus_jobs,
                        corpus.len(),
                        "shard file {i}'s next report covers a different corpus — \
                         emitted with different experiments or profile?"
                    );
                    match &mut merged {
                        Some(m) => m.merge(report),
                        None => merged = Some(report),
                    }
                }
                Some(
                    merged
                        .expect("merge mode needs at least one shard file")
                        .finish(),
                )
            }
        }
    }

    /// Closes an Emit-mode runner, returning the recorded reports in
    /// call order.
    ///
    /// # Panics
    ///
    /// Panics on a non-Emit runner.
    pub fn into_emitted(self) -> Vec<ShardReport> {
        match self.mode.into_inner() {
            Mode::Emit { reports, .. } => reports,
            _ => panic!("into_emitted on a non-emit runner"),
        }
    }

    /// Merge-mode sanity check after the last experiment: every shard
    /// file must be fully consumed, or the merging invocation selected
    /// fewer experiments than the emitting one.
    ///
    /// # Panics
    ///
    /// Panics when reports are left over (no-op in other modes).
    pub fn assert_drained(&self) {
        if let Mode::Merge { queues } = &*self.mode.borrow() {
            for (i, queue) in queues.iter().enumerate() {
                assert!(
                    queue.is_empty(),
                    "shard file {i} has {} unconsumed reports — emitted with more \
                     experiments selected than merged?",
                    queue.len()
                );
            }
        }
    }
}

/// Everything a shard file records: which run it belongs to (profile,
/// experiment ids, shard coordinates) and the reports in call order.
#[derive(Debug)]
pub struct ShardFile {
    /// Trial-count profile of the emitting invocation.
    pub profile: Profile,
    /// Comma-joined experiment ids of the emitting invocation.
    pub ids: String,
    /// Shard index this file was produced as.
    pub shard: usize,
    /// Total shard count of the split.
    pub shards: usize,
    /// Recorded reports, in experiment call order.
    pub reports: Vec<ShardReport>,
}

/// Writes one process's recorded shard reports with the header that lets
/// the merging invocation verify every file belongs to the same run.
///
/// # Errors
///
/// Propagates writer errors.
pub fn write_shard_file<W: Write>(
    mut w: W,
    profile: Profile,
    ids: &str,
    shard: usize,
    shards: usize,
    reports: &[ShardReport],
) -> io::Result<()> {
    let mut buf = Vec::new();
    buf.extend_from_slice(SHARD_FILE_MAGIC);
    buf.push(match profile {
        Profile::Quick => 0,
        Profile::Full => 1,
    });
    snap::write_str(&mut buf, ids)?;
    snap::write_u64(&mut buf, shard as u64)?;
    snap::write_u64(&mut buf, shards as u64)?;
    snap::write_u64(&mut buf, reports.len() as u64)?;
    for report in reports {
        let mut blob = Vec::new();
        report.save_to(&mut blob)?;
        snap::write_bytes(&mut buf, &blob)?;
    }
    snap::seal(&mut buf);
    // Chaos: the write dies mid-file. The torn file fails its seal at
    // merge time, so the run aborts loudly instead of merging a prefix.
    if let Some(mut roll) = dapc_chaos::roll("shard.write") {
        w.write_all(&buf[..roll.pick(buf.len().max(2) - 1) + 1])?;
        return Err(io::Error::other("chaos: shard file torn mid-write"));
    }
    w.write_all(&buf)?;
    Ok(())
}

/// Reads a file written by [`write_shard_file`]. Like every snapshot
/// loader in the workspace it fully parses before returning and fails
/// with an `Err` — never a panic — on truncated or corrupt input.
///
/// # Errors
///
/// `InvalidData` on a bad magic/version, a corrupt field or trailing
/// bytes after the last report, `UnexpectedEof` on truncation, plus any
/// reader error.
pub fn read_shard_file<R: Read>(r: R) -> io::Result<ShardFile> {
    let mut r = snap::SealingReader::new(dapc_chaos::corrupt_reader("shardfile.load", r));
    snap::check_magic(&mut r, SHARD_FILE_MAGIC, "shard-file")?;
    let profile = match snap::read_u8(&mut r)? {
        0 => Profile::Quick,
        1 => Profile::Full,
        b => return Err(snap::invalid(format!("bad profile byte {b}"))),
    };
    let ids = snap::read_str(&mut r, "experiment ids")?;
    let shard = snap::read_u64(&mut r)? as usize;
    let shards = snap::read_u64(&mut r)? as usize;
    if shards == 0 || shard >= shards {
        return Err(snap::invalid(format!(
            "shard header {shard}/{shards} out of range"
        )));
    }
    let count = snap::read_u64(&mut r)?;
    let mut reports = Vec::new();
    for _ in 0..count {
        let blob = snap::read_bytes(&mut r, "shard report")?;
        reports.push(ShardReport::load_from(blob.as_slice())?);
    }
    r.verify_seal("shard-file")?;
    // Self-delimiting like every snapshot format here: bytes after the
    // last report are corruption (e.g. concatenated files), not padding.
    let mut trailing = [0u8; 1];
    if r.read(&mut trailing)? != 0 {
        return Err(snap::invalid("trailing bytes after the last shard report"));
    }
    Ok(ShardFile {
        profile,
        ids,
        shard,
        shards,
        reports,
    })
}
