//! Minimal fixed-width table rendering for the experiment harness.

/// A fixed-column table that renders as GitHub-flavoured markdown.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the header.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as markdown with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n### {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                line.push_str(&format!(" {:<width$} |", c, width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Helper: format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Helper: format a float with 4 decimals.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("### demo"));
        assert!(s.contains("| a   | long-header |"));
        assert!(s.contains("| 333 | 4           |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
