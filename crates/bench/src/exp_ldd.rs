//! Experiments E1, E2, E8, E9 — decomposition quality, the Appendix C
//! failure modes, sparse-cover multiplicities, and the §1.6 blackbox.

use crate::table::{f3, f4, Table};
use dapc_conc::{FailureCounter, TailEstimator};
use dapc_decomp::blackbox::{blackbox_ldd, BlackboxParams};
use dapc_decomp::elkin_neiman::{elkin_neiman, EnParams};
use dapc_decomp::mpx::mpx;
use dapc_decomp::sparse_cover::sparse_cover;
use dapc_decomp::three_phase::{three_phase_ldd, LddParams};
use dapc_graph::{gen, Graph, Hypergraph};
use dapc_local::RoundCost;

fn families(n: usize, seed: u64) -> Vec<(&'static str, Graph)> {
    let side = (n as f64).sqrt() as usize;
    vec![
        (
            "gnp",
            gen::gnp(n, 6.0 / n as f64, &mut gen::seeded_rng(seed)),
        ),
        ("grid", gen::grid(side, side)),
        (
            "reg4",
            gen::random_regular(n - n % 2, 4, &mut gen::seeded_rng(seed + 1)),
        ),
    ]
}

/// E1 (Theorem 1.1): deleted fraction and diameter of the three-phase LDD
/// vs the Elkin–Neiman baseline, across n, ε and graph families.
pub fn e1(trials: usize) -> String {
    let mut t = Table::new(
        "E1 — Theorem 1.1: LDD quality (three-phase vs Elkin–Neiman)",
        &[
            "family", "n", "eps", "algo", "del mean", "del p95", "del max", "maxdiam", "rounds",
        ],
    );
    for n in [512usize, 2048] {
        for (name, g) in families(n, 11) {
            for eps in [0.1f64, 0.2, 0.4] {
                let params = LddParams::scaled(eps, g.n() as f64, 0.05);
                let mut frac = TailEstimator::new();
                let mut diam = 0u32;
                let mut rounds = 0usize;
                let mut rng = gen::seeded_rng(101);
                for _ in 0..trials {
                    let out = three_phase_ldd(&g, &params, &mut rng, None);
                    frac.push(out.decomposition.deleted_fraction());
                    diam = diam.max(out.decomposition.max_weak_diameter(&g));
                    rounds = out.decomposition.rounds();
                }
                t.row(vec![
                    name.into(),
                    g.n().to_string(),
                    format!("{eps}"),
                    "3-phase".into(),
                    f3(frac.mean()),
                    f3(frac.quantile(0.95)),
                    f3(frac.max()),
                    diam.to_string(),
                    rounds.to_string(),
                ]);
                let en = EnParams::new(eps, g.n() as f64);
                let mut frac = TailEstimator::new();
                let mut diam = 0u32;
                let mut rounds = 0usize;
                for _ in 0..trials {
                    let out = elkin_neiman(&g, &en, &mut rng, None);
                    frac.push(out.deleted_fraction());
                    diam = diam.max(out.max_weak_diameter(&g));
                    rounds = out.rounds();
                }
                t.row(vec![
                    name.into(),
                    g.n().to_string(),
                    format!("{eps}"),
                    "EN".into(),
                    f3(frac.mean()),
                    f3(frac.quantile(0.95)),
                    f3(frac.max()),
                    diam.to_string(),
                    rounds.to_string(),
                ]);
            }
        }
    }
    t.render()
}

/// E2 (Appendix C): catastrophic failure probabilities of the classical
/// decompositions vs the three-phase algorithm on the counterexample
/// families.
pub fn e2(trials: usize) -> String {
    let mut t = Table::new(
        "E2 — Appendix C: Ω(ε) failure probability of classical LDDs",
        &[
            "family",
            "n",
            "eps",
            "algo",
            "catastrophe",
            "Pr[fail]",
            "95% CI",
        ],
    );
    let mut rng = gen::seeded_rng(202);
    for n in [40usize, 80, 160] {
        for eps in [0.1f64, 0.3] {
            let g = gen::complete(n);
            let mut fails = FailureCounter::new();
            for _ in 0..trials {
                let d = elkin_neiman(&g, &EnParams::new(eps, n as f64), &mut rng, None);
                fails.record(d.deleted_count() >= n - 1);
            }
            let (lo, hi) = fails.confidence();
            t.row(vec![
                "clique".into(),
                n.to_string(),
                format!("{eps}"),
                "EN".into(),
                "n−1 deleted".into(),
                f4(fails.rate()),
                format!("[{:.3},{:.3}]", lo, hi),
            ]);
        }
    }
    for tt in [8usize, 12] {
        for eps in [0.1f64, 0.3] {
            let (g, layout) = gen::mpx_gadget(tt);
            let mut fails = FailureCounter::new();
            for _ in 0..trials {
                let c = mpx(&g, eps, g.n() as f64, &mut rng);
                let core = c
                    .cut_edges
                    .iter()
                    .filter(|&&(u, v)| {
                        (layout.l.contains(&u) && layout.r.contains(&v))
                            || (layout.l.contains(&v) && layout.r.contains(&u))
                    })
                    .count();
                fails.record(core == tt * tt);
            }
            let (lo, hi) = fails.confidence();
            t.row(vec![
                "mpx-gadget".into(),
                g.n().to_string(),
                format!("{eps}"),
                "MPX".into(),
                "core fully cut".into(),
                f4(fails.rate()),
                format!("[{:.3},{:.3}]", lo, hi),
            ]);
        }
    }
    // Three-phase: budget violations on both families.
    for (name, g) in [
        ("clique", gen::complete(80)),
        ("mpx-gadget", gen::mpx_gadget(12).0),
    ] {
        let eps = 0.3;
        let params = LddParams::scaled(eps, g.n() as f64, 0.05);
        let mut fails = FailureCounter::new();
        for _ in 0..trials.min(200) {
            let out = three_phase_ldd(&g, &params, &mut rng, None);
            fails.record(out.decomposition.deleted_fraction() > eps);
        }
        let (lo, hi) = fails.confidence();
        t.row(vec![
            name.into(),
            g.n().to_string(),
            format!("{eps}"),
            "3-phase".into(),
            "deleted > ε·n".into(),
            f4(fails.rate()),
            format!("[{:.3},{:.3}]", lo, hi),
        ]);
    }
    t.render()
}

/// E8 (Lemmas C.2–C.3): sparse-cover multiplicity vs the geometric bound
/// and full hyperedge coverage.
pub fn e8(trials: usize) -> String {
    let mut t = Table::new(
        "E8 — Lemma C.2: sparse cover multiplicities vs Geometric(e^{−λ})",
        &[
            "hypergraph",
            "n",
            "lambda",
            "mean X_v",
            "e^λ bound",
            "max X_v",
            "uncovered",
        ],
    );
    let mut rng = gen::seeded_rng(808);
    let hs: Vec<(&str, Hypergraph)> = vec![
        ("grid edges", Hypergraph::from_graph(&gen::grid(20, 20))),
        (
            "gnp edges",
            Hypergraph::from_graph(&gen::gnp(400, 0.012, &mut gen::seeded_rng(9))),
        ),
        (
            "k-DS balls (C200,k=2)",
            dapc_ilp::problems::k_dominating_set(&gen::cycle(200), 2, vec![1; 200])
                .hypergraph()
                .clone(),
        ),
    ];
    for (name, h) in &hs {
        for lambda in [0.05f64, 0.2, 0.5] {
            let mut mean = 0.0;
            let mut max_mult = 0usize;
            let mut uncovered = 0usize;
            for _ in 0..trials {
                let cover = sparse_cover(h, lambda, h.n() as f64, &mut rng, None, None);
                mean += cover.mean_multiplicity();
                max_mult = max_mult.max(
                    (0..h.n() as u32)
                        .map(|v| cover.multiplicity(v))
                        .max()
                        .unwrap_or(0),
                );
                uncovered += cover.uncovered_edges(h, None, None).len();
            }
            t.row(vec![
                name.to_string(),
                h.n().to_string(),
                format!("{lambda}"),
                f3(mean / trials as f64),
                f3(lambda.exp()),
                max_mult.to_string(),
                uncovered.to_string(),
            ]);
        }
    }
    t.render()
}

/// E9 (§1.6): the blackbox construction vs the direct three-phase LDD —
/// round growth in 1/ε and quality parity.
pub fn e9(trials: usize) -> String {
    let mut t = Table::new(
        "E9 — §1.6 blackbox vs Theorem 1.1: rounds and quality across ε",
        &[
            "eps",
            "algo",
            "rounds",
            "del mean",
            "del max",
            "round growth",
        ],
    );
    let g = gen::gnp(600, 0.01, &mut gen::seeded_rng(33));
    let mut prev_bb = 0usize;
    let mut prev_tp = 0usize;
    for eps in [0.4f64, 0.2, 0.1, 0.05] {
        let mut rng = gen::seeded_rng(909);
        let bb = BlackboxParams::new(eps, g.n() as f64, 0.02);
        let mut frac = TailEstimator::new();
        let mut rounds = 0usize;
        for _ in 0..trials {
            let d = blackbox_ldd(&g, &bb, &mut rng);
            frac.push(d.deleted_fraction());
            rounds = d.rounds();
        }
        let growth = if prev_bb > 0 {
            f3(rounds as f64 / prev_bb as f64)
        } else {
            "—".into()
        };
        prev_bb = rounds;
        t.row(vec![
            format!("{eps}"),
            "blackbox".into(),
            rounds.to_string(),
            f3(frac.mean()),
            f3(frac.max()),
            growth,
        ]);
        let tp = LddParams::scaled(eps, g.n() as f64, 0.02);
        let mut frac = TailEstimator::new();
        let mut rounds = 0usize;
        for _ in 0..trials {
            let d = three_phase_ldd(&g, &tp, &mut rng, None);
            frac.push(d.decomposition.deleted_fraction());
            rounds = d.decomposition.rounds();
        }
        let growth = if prev_tp > 0 {
            f3(rounds as f64 / prev_tp as f64)
        } else {
            "—".into()
        };
        prev_tp = rounds;
        t.row(vec![
            format!("{eps}"),
            "3-phase".into(),
            rounds.to_string(),
            f3(frac.mean()),
            f3(frac.max()),
            growth,
        ]);
    }
    t.render()
}
