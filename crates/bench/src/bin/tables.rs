//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! Usage: `tables [quick|full] [e1 e2 …]` — defaults to `full` and all
//! experiments.

use dapc_bench::{run_experiment, Profile, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = Profile::Full;
    let mut ids: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "quick" => profile = Profile::Quick,
            "full" => profile = Profile::Full,
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        let start = std::time::Instant::now();
        let table = run_experiment(id, profile);
        println!("{table}");
        eprintln!("[{id} finished in {:.1?}]", start.elapsed());
    }
}
