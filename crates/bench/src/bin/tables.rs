//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! Usage: `tables [--quick|--full] [--jobs N] [e1 e2 …]` — defaults to
//! `--full`, one worker, and all experiments. (`quick`/`full` without
//! dashes are accepted for backwards compatibility.)

use dapc_bench::{run_experiment, Profile, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = Profile::Full;
    let mut jobs = 1usize;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "quick" | "--quick" => profile = Profile::Quick,
            "full" | "--full" => profile = Profile::Full,
            "--jobs" => {
                let n = it.next().expect("--jobs needs a worker count");
                jobs = n
                    .parse()
                    .unwrap_or_else(|_| panic!("bad --jobs value {n:?}"));
            }
            other => {
                if let Some(n) = other.strip_prefix("--jobs=") {
                    jobs = n
                        .parse()
                        .unwrap_or_else(|_| panic!("bad --jobs value {n:?}"));
                } else {
                    ids.push(other.to_string());
                }
            }
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        let start = std::time::Instant::now();
        let table = run_experiment(id, profile, jobs);
        println!("{table}");
        eprintln!("[{id} finished in {:.1?}]", start.elapsed());
    }
}
