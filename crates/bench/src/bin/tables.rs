//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! Usage: `tables [--quick|--full] [--jobs N] [--prep-workers N]
//! [--metrics PATH] [e1 e2 …]` — defaults to `--full`, one concurrent
//! job, unsharded preparations, and all experiments. (`quick`/`full`
//! without dashes are accepted for backwards compatibility.) `--jobs`
//! and `--prep-workers` are honoured in both profiles; neither changes a
//! table — batching is byte-identical to sequential execution.
//!
//! `--metrics PATH` turns the `dapc-obs` registry on for the run and
//! writes its JSON-lines snapshot to `PATH` on success. Like the
//! parallelism knobs, it never changes a table byte — the observability
//! identity is diff-checked in CI.
//!
//! Multi-process sharding splits the batch experiments (E3–E6, E10)
//! across N cooperating invocations, byte-identically to one process:
//!
//! ```sh
//! tables --quick --shard 0/2 --emit-shard shard0.bin   # process 0
//! tables --quick --shard 1/2 --emit-shard shard1.bin   # process 1
//! tables --quick --merge-shards shard0.bin shard1.bin  # render tables
//! ```
//!
//! `--shard i/n --emit-shard PATH` solves only shard `i`'s contiguous
//! slice of every batch corpus and writes the mergeable aggregation
//! snapshots to `PATH` (non-batch experiments are skipped — they run
//! inline at merge time). `--merge-shards PATHS..` (every following
//! argument is a path) runs no batch jobs: it merges the recorded
//! snapshots, verifies they all belong to the same profile/experiment
//! selection and that every shard 0..n is present exactly once, and
//! prints the same tables the unsharded invocation would.
//!
//! `--orchestrate N` drives the whole protocol itself: it spawns the N
//! shard workers as supervised child processes (the `dapc-serve`
//! supervisor — crashed workers are re-spawned, a loadable shard file on
//! disk is the ground truth of completion), then merges and renders.
//! `--inject-kill` arms a fault drill: the first worker aborts mid-run
//! and the supervisor's retry must still produce byte-identical tables.
//! `--shard-dir DIR` pins where the shard files live (default: a
//! process-unique directory under the system temp dir).
//!
//! `--chaos-seed S` arms the deterministic fault plan (`dapc-chaos`)
//! for this process *and* — via the inherited environment — every shard
//! worker it spawns: checkpoint writes tear, loads flip bits, workers
//! stall and abort, all on a schedule that is a pure function of the
//! seed. Retried workers get the attempt number as their chaos salt, so
//! a fault cannot replay itself against every retry. The contract the
//! CI chaos drill enforces: a seeded run either fails loudly with the
//! triage exit code below or renders byte-identical tables.
//!
//! Exit codes follow `dapc_serve::exit`: 0 ok, 3 transient I/O, 4 a
//! corrupt or truncated shard file, 5 a panicking solve — so a
//! supervising coordinator can tell retryable deaths from fatal ones.

#![forbid(unsafe_code)]

use dapc_bench::shard::{read_shard_file, write_shard_file, Runner};
use dapc_bench::{run_experiment, Profile, ALL_EXPERIMENTS, BATCH_EXPERIMENTS};
use dapc_runtime::RuntimeConfig;
use dapc_serve::{exit, Supervisor, Verdict};
use std::fs::File;
use std::io::{self, BufReader, BufWriter};
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn parse_count(flag: &str, value: &str) -> usize {
    value
        .parse()
        .unwrap_or_else(|_| panic!("bad {flag} value {value:?}"))
}

/// Parses `i/n` (e.g. `0/2`) into `(shard, shards)`.
fn parse_shard(value: &str) -> (usize, usize) {
    let parse = || {
        let (i, n) = value.split_once('/')?;
        let i = i.parse::<usize>().ok()?;
        let n = n.parse::<usize>().ok()?;
        (n > 0 && i < n).then_some((i, n))
    };
    parse().unwrap_or_else(|| panic!("bad --shard value {value:?} (expected i/n with i < n)"))
}

/// Reports an I/O failure and exits with its triage code
/// ([`exit::EXIT_BAD_SNAPSHOT`] for corrupt/truncated snapshot bytes,
/// [`exit::EXIT_IO`] for transient filesystem trouble).
fn die(e: &io::Error, ctx: &str) -> ! {
    eprintln!("tables: {ctx}: {e}");
    std::process::exit(exit::classify(e));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = Profile::Full;
    let mut rt = RuntimeConfig::new();
    let mut ids: Vec<String> = Vec::new();
    let mut shard: Option<(usize, usize)> = None;
    let mut emit_path: Option<String> = None;
    let mut merge_paths: Vec<String> = Vec::new();
    let mut orchestrate_workers: Option<usize> = None;
    let mut inject_kill = false;
    let mut self_destruct = false;
    let mut shard_dir: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "quick" | "--quick" => profile = Profile::Quick,
            "full" | "--full" => profile = Profile::Full,
            "--jobs" => {
                let n = it.next().expect("--jobs needs a worker count");
                rt.jobs = parse_count("--jobs", &n);
            }
            "--prep-workers" => {
                let n = it.next().expect("--prep-workers needs a worker count");
                rt.prep_workers = parse_count("--prep-workers", &n);
            }
            "--shard" => {
                let v = it.next().expect("--shard needs i/n");
                shard = Some(parse_shard(&v));
            }
            "--emit-shard" => {
                emit_path = Some(it.next().expect("--emit-shard needs a path"));
            }
            "--merge-shards" => {
                // Everything after --merge-shards is a shard file path.
                merge_paths.extend(it.by_ref());
                assert!(
                    !merge_paths.is_empty(),
                    "--merge-shards needs at least one path"
                );
            }
            "--orchestrate" => {
                let n = it.next().expect("--orchestrate needs a worker count");
                orchestrate_workers = Some(parse_count("--orchestrate", &n));
            }
            "--inject-kill" => inject_kill = true,
            "--self-destruct" => self_destruct = true,
            "--shard-dir" => {
                shard_dir = Some(PathBuf::from(it.next().expect("--shard-dir needs a path")));
            }
            "--metrics" => {
                metrics_path = Some(PathBuf::from(it.next().expect("--metrics needs a path")));
            }
            "--chaos-seed" => {
                let v = it.next().expect("--chaos-seed needs a u64 seed");
                chaos_seed = Some(
                    v.parse()
                        .unwrap_or_else(|_| panic!("bad --chaos-seed {v:?}")),
                );
            }
            other => {
                if let Some(n) = other.strip_prefix("--jobs=") {
                    rt.jobs = parse_count("--jobs", n);
                } else if let Some(n) = other.strip_prefix("--prep-workers=") {
                    rt.prep_workers = parse_count("--prep-workers", n);
                } else if let Some(v) = other.strip_prefix("--shard=") {
                    shard = Some(parse_shard(v));
                } else if let Some(p) = other.strip_prefix("--emit-shard=") {
                    emit_path = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--merge-shards=") {
                    // Equals-form: comma-separated paths.
                    merge_paths.extend(p.split(',').map(str::to_string));
                } else if let Some(n) = other.strip_prefix("--orchestrate=") {
                    orchestrate_workers = Some(parse_count("--orchestrate", n));
                } else if let Some(p) = other.strip_prefix("--shard-dir=") {
                    shard_dir = Some(PathBuf::from(p));
                } else if let Some(p) = other.strip_prefix("--metrics=") {
                    metrics_path = Some(PathBuf::from(p));
                } else if let Some(v) = other.strip_prefix("--chaos-seed=") {
                    chaos_seed = Some(
                        v.parse()
                            .unwrap_or_else(|_| panic!("bad --chaos-seed {v:?}")),
                    );
                } else if other.starts_with("--") {
                    panic!("unknown flag {other:?}");
                } else {
                    ids.push(other.to_string());
                }
            }
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    assert!(
        shard.is_some() == emit_path.is_some(),
        "--shard and --emit-shard go together"
    );
    assert!(
        merge_paths.is_empty() || shard.is_none(),
        "--merge-shards conflicts with --shard/--emit-shard"
    );
    assert!(
        orchestrate_workers.is_none() || (shard.is_none() && merge_paths.is_empty()),
        "--orchestrate conflicts with --shard/--emit-shard/--merge-shards"
    );

    // Observability goes live before any solve so the snapshot covers
    // the whole run; it is diff-checked in CI to never change a table.
    if metrics_path.is_some() {
        dapc_obs::set_enabled(true);
    }

    // The fault plan arms before any I/O, and exports itself through the
    // environment so spawned shard workers run under the same seed.
    if let Some(seed) = chaos_seed {
        dapc_chaos::arm(seed, 0);
    }

    if let Some(workers) = orchestrate_workers {
        orchestrate(profile, &rt, &ids, workers, inject_kill, shard_dir);
    } else if let (Some((shard, shards)), Some(path)) = (shard, emit_path) {
        emit(profile, rt, &ids, shard, shards, &path, self_destruct);
    } else if !merge_paths.is_empty() {
        merge(profile, rt, &ids, &merge_paths);
    } else {
        let runner = Runner::single(rt);
        render(profile, &ids, &runner);
        runner.assert_drained();
    }

    if let Some(path) = metrics_path {
        dapc_obs::write_snapshot(&path)
            .unwrap_or_else(|e| die(&e, &format!("write metrics snapshot {}", path.display())));
        eprintln!("[metrics snapshot written to {}]", path.display());
    }
}

/// Renders every selected experiment to stdout.
fn render(profile: Profile, ids: &[String], runner: &Runner) {
    for id in ids {
        let start = std::time::Instant::now();
        let table = run_experiment(id, profile, runner);
        println!("{table}");
        eprintln!("[{id} finished in {:.1?}]", start.elapsed());
    }
}

/// `--shard i/n --emit-shard PATH`: solve this shard's slice of every
/// selected batch experiment and write the snapshots.
fn emit(
    profile: Profile,
    rt: RuntimeConfig,
    ids: &[String],
    shard: usize,
    shards: usize,
    path: &str,
    self_destruct: bool,
) {
    let runner = Runner::emit(rt, shard, shards);
    let mut fuse = self_destruct;
    for id in ids {
        if !BATCH_EXPERIMENTS.contains(&id.as_str()) {
            eprintln!("[{id} does not batch; it runs inline at merge time]");
            continue;
        }
        let start = std::time::Instant::now();
        // A panicking solve is deterministic in its inputs — die with
        // the code that tells the coordinator not to bother retrying.
        let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_experiment(id, profile, &runner)
        }));
        let table = solved.unwrap_or_else(|_| {
            eprintln!("tables: solve of {id} panicked");
            std::process::exit(exit::EXIT_SOLVE_PANIC);
        });
        assert!(table.is_empty(), "emit mode must not render");
        eprintln!(
            "[{id} shard {shard}/{shards} solved in {:.1?}]",
            start.elapsed()
        );
        if std::mem::take(&mut fuse) {
            // The fault drill: die after real work but before anything
            // reaches disk — no unwinding, no shard file, exactly like a
            // SIGKILL mid-sweep. The supervisor must salvage.
            eprintln!("[injected kill: aborting shard {shard}/{shards} after {id}]");
            std::process::abort();
        }
    }
    let reports = runner.into_emitted();
    let file = File::create(path).unwrap_or_else(|e| die(&e, &format!("create {path:?}")));
    write_shard_file(
        BufWriter::new(file),
        profile,
        &ids.join(","),
        shard,
        shards,
        &reports,
    )
    .unwrap_or_else(|e| die(&e, &format!("write {path:?}")));
    eprintln!(
        "[shard {shard}/{shards}: {} batch snapshots written to {path}]",
        reports.len()
    );
}

/// `--merge-shards PATHS..`: verify the shard files belong together,
/// merge their snapshots, and render every selected experiment.
fn merge(profile: Profile, rt: RuntimeConfig, ids: &[String], paths: &[String]) {
    let expected_ids = ids.join(",");
    let mut queues = Vec::new();
    let mut seen_shards = Vec::new();
    let mut split = None;
    for path in paths {
        let file = File::open(path).unwrap_or_else(|e| die(&e, &format!("open {path:?}")));
        let shard_file = read_shard_file(BufReader::new(file))
            .unwrap_or_else(|e| die(&e, &format!("read {path:?}")));
        assert!(
            shard_file.profile == profile,
            "{path}: emitted with a different profile"
        );
        assert!(
            shard_file.ids == expected_ids,
            "{path}: emitted with experiments [{}], merging [{expected_ids}]",
            shard_file.ids
        );
        let shards = *split.get_or_insert(shard_file.shards);
        assert!(
            shard_file.shards == shards,
            "{path}: a {}-shard file in a {shards}-shard merge",
            shard_file.shards
        );
        assert!(
            !seen_shards.contains(&shard_file.shard),
            "{path}: shard {} supplied twice",
            shard_file.shard
        );
        seen_shards.push(shard_file.shard);
        queues.push(shard_file.reports);
    }
    let shards = split.expect("at least one shard file");
    assert!(
        seen_shards.len() == shards,
        "merge needs all {shards} shards, got {:?}",
        seen_shards
    );
    let runner = Runner::merge(rt, queues);
    render(profile, ids, &runner);
    runner.assert_drained();
}

/// `--orchestrate N`: run the whole emit → supervise → merge protocol in
/// one invocation. Shard workers are this same binary in `--shard i/n
/// --emit-shard` mode, supervised by the `dapc-serve` process pool: a
/// worker that crashes (or is killed by the `--inject-kill` drill)
/// leaves no loadable shard file, so the judge re-spawns its shard;
/// deterministic deaths (corrupt input, a panicking solve) abort the run
/// instead of retrying into the same wall.
fn orchestrate(
    profile: Profile,
    rt: &RuntimeConfig,
    ids: &[String],
    workers: usize,
    inject_kill: bool,
    shard_dir: Option<PathBuf>,
) {
    assert!(workers > 0, "--orchestrate needs at least one worker");
    let dir = shard_dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("tables-orchestrate-{}", std::process::id()))
    });
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| die(&e, &format!("create {}", dir.display())));
    let exe = std::env::current_exe().unwrap_or_else(|e| die(&e, "locate the tables binary"));
    let profile_flag = match profile {
        Profile::Quick => "--quick",
        Profile::Full => "--full",
    };
    let shard_path = |i: usize| dir.join(format!("shard{i}.bin"));

    // The drill arms exactly one spawn: the first worker aborts mid-run,
    // every retry (and every other worker) runs clean.
    let mut armed = inject_kill;
    let supervisor = Supervisor {
        slots: workers,
        max_attempts: 3,
        timeout: None,
    };
    let stats = supervisor
        .run(
            (0..workers).collect(),
            |&i, attempt| {
                let mut cmd = Command::new(&exe);
                // A fresh chaos salt per (shard, attempt): a seeded
                // fault cannot replay itself against every retry, nor
                // fire in lockstep across sibling shard workers.
                cmd.env(
                    dapc_chaos::SALT_ENV,
                    (attempt as u64 * 0x1_0000 + i as u64).to_string(),
                );
                cmd.arg(profile_flag)
                    .arg("--jobs")
                    .arg(rt.jobs.to_string())
                    .arg("--prep-workers")
                    .arg(rt.prep_workers.to_string())
                    .arg("--shard")
                    .arg(format!("{i}/{workers}"))
                    .arg("--emit-shard")
                    .arg(shard_path(i))
                    .args(ids)
                    .stdout(Stdio::null())
                    .stderr(Stdio::inherit());
                if std::mem::take(&mut armed) {
                    cmd.arg("--self-destruct");
                }
                cmd.spawn()
            },
            |&i, exit_status| {
                // The shard file on disk is the ground truth of what the
                // attempt achieved, whatever the exit status claims.
                let loadable = File::open(shard_path(i))
                    .map(BufReader::new)
                    .and_then(read_shard_file)
                    .map(|f| f.shard == i && f.shards == workers)
                    .unwrap_or(false);
                if loadable {
                    return Ok(Verdict::Done);
                }
                // Torn or foreign: as if the worker never finished.
                std::fs::remove_file(shard_path(i)).ok();
                if !exit_status.timed_out
                    && exit_status.code != Some(exit::EXIT_OK)
                    && !exit::is_retryable(exit_status.code)
                {
                    return Ok(Verdict::Fatal(format!(
                        "shard {i}/{workers} failed deterministically (exit {:?})",
                        exit_status.code
                    )));
                }
                Ok(Verdict::Requeue {
                    tasks: vec![i],
                    progress: false,
                })
            },
        )
        .unwrap_or_else(|e| die(&e, "supervising shard workers"));
    eprintln!(
        "[orchestrated {workers} shard workers: {} spawns, {} retries, {} timeouts]",
        stats.spawns, stats.retries, stats.timeouts
    );
    let paths: Vec<String> = (0..workers)
        .map(|i| shard_path(i).to_string_lossy().into_owned())
        .collect();
    merge(profile, rt.clone(), ids, &paths);
}
