//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! Usage: `tables [--quick|--full] [--jobs N] [--prep-workers N] [e1 e2 …]`
//! — defaults to `--full`, one concurrent job, unsharded preparations, and
//! all experiments. (`quick`/`full` without dashes are accepted for
//! backwards compatibility.) `--jobs` and `--prep-workers` are honoured
//! in both profiles; neither changes a table — batching is byte-identical
//! to sequential execution.

use dapc_bench::{run_experiment, Profile, ALL_EXPERIMENTS};
use dapc_runtime::RuntimeConfig;

fn parse_count(flag: &str, value: &str) -> usize {
    value
        .parse()
        .unwrap_or_else(|_| panic!("bad {flag} value {value:?}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = Profile::Full;
    let mut rt = RuntimeConfig::new();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "quick" | "--quick" => profile = Profile::Quick,
            "full" | "--full" => profile = Profile::Full,
            "--jobs" => {
                let n = it.next().expect("--jobs needs a worker count");
                rt.jobs = parse_count("--jobs", &n);
            }
            "--prep-workers" => {
                let n = it.next().expect("--prep-workers needs a worker count");
                rt.prep_workers = parse_count("--prep-workers", &n);
            }
            other => {
                if let Some(n) = other.strip_prefix("--jobs=") {
                    rt.jobs = parse_count("--jobs", n);
                } else if let Some(n) = other.strip_prefix("--prep-workers=") {
                    rt.prep_workers = parse_count("--prep-workers", n);
                } else {
                    ids.push(other.to_string());
                }
            }
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        let start = std::time::Instant::now();
        let table = run_experiment(id, profile, &rt);
        println!("{table}");
        eprintln!("[{id} finished in {:.1?}]", start.elapsed());
    }
}
