//! Regenerates the experiment tables of `EXPERIMENTS.md`.
//!
//! Usage: `tables [--quick|--full] [--jobs N] [--prep-workers N] [e1 e2 …]`
//! — defaults to `--full`, one concurrent job, unsharded preparations, and
//! all experiments. (`quick`/`full` without dashes are accepted for
//! backwards compatibility.) `--jobs` and `--prep-workers` are honoured
//! in both profiles; neither changes a table — batching is byte-identical
//! to sequential execution.
//!
//! Multi-process sharding splits the batch experiments (E3–E6, E10)
//! across N cooperating invocations, byte-identically to one process:
//!
//! ```sh
//! tables --quick --shard 0/2 --emit-shard shard0.bin   # process 0
//! tables --quick --shard 1/2 --emit-shard shard1.bin   # process 1
//! tables --quick --merge-shards shard0.bin shard1.bin  # render tables
//! ```
//!
//! `--shard i/n --emit-shard PATH` solves only shard `i`'s contiguous
//! slice of every batch corpus and writes the mergeable aggregation
//! snapshots to `PATH` (non-batch experiments are skipped — they run
//! inline at merge time). `--merge-shards PATHS..` (every following
//! argument is a path) runs no batch jobs: it merges the recorded
//! snapshots, verifies they all belong to the same profile/experiment
//! selection and that every shard 0..n is present exactly once, and
//! prints the same tables the unsharded invocation would.

use dapc_bench::shard::{read_shard_file, write_shard_file, Runner};
use dapc_bench::{run_experiment, Profile, ALL_EXPERIMENTS, BATCH_EXPERIMENTS};
use dapc_runtime::RuntimeConfig;
use std::fs::File;
use std::io::{BufReader, BufWriter};

fn parse_count(flag: &str, value: &str) -> usize {
    value
        .parse()
        .unwrap_or_else(|_| panic!("bad {flag} value {value:?}"))
}

/// Parses `i/n` (e.g. `0/2`) into `(shard, shards)`.
fn parse_shard(value: &str) -> (usize, usize) {
    let parse = || {
        let (i, n) = value.split_once('/')?;
        let i = i.parse::<usize>().ok()?;
        let n = n.parse::<usize>().ok()?;
        (n > 0 && i < n).then_some((i, n))
    };
    parse().unwrap_or_else(|| panic!("bad --shard value {value:?} (expected i/n with i < n)"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut profile = Profile::Full;
    let mut rt = RuntimeConfig::new();
    let mut ids: Vec<String> = Vec::new();
    let mut shard: Option<(usize, usize)> = None;
    let mut emit_path: Option<String> = None;
    let mut merge_paths: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "quick" | "--quick" => profile = Profile::Quick,
            "full" | "--full" => profile = Profile::Full,
            "--jobs" => {
                let n = it.next().expect("--jobs needs a worker count");
                rt.jobs = parse_count("--jobs", &n);
            }
            "--prep-workers" => {
                let n = it.next().expect("--prep-workers needs a worker count");
                rt.prep_workers = parse_count("--prep-workers", &n);
            }
            "--shard" => {
                let v = it.next().expect("--shard needs i/n");
                shard = Some(parse_shard(&v));
            }
            "--emit-shard" => {
                emit_path = Some(it.next().expect("--emit-shard needs a path"));
            }
            "--merge-shards" => {
                // Everything after --merge-shards is a shard file path.
                merge_paths.extend(it.by_ref());
                assert!(
                    !merge_paths.is_empty(),
                    "--merge-shards needs at least one path"
                );
            }
            other => {
                if let Some(n) = other.strip_prefix("--jobs=") {
                    rt.jobs = parse_count("--jobs", n);
                } else if let Some(n) = other.strip_prefix("--prep-workers=") {
                    rt.prep_workers = parse_count("--prep-workers", n);
                } else if let Some(v) = other.strip_prefix("--shard=") {
                    shard = Some(parse_shard(v));
                } else if let Some(p) = other.strip_prefix("--emit-shard=") {
                    emit_path = Some(p.to_string());
                } else if let Some(p) = other.strip_prefix("--merge-shards=") {
                    // Equals-form: comma-separated paths.
                    merge_paths.extend(p.split(',').map(str::to_string));
                } else if other.starts_with("--") {
                    panic!("unknown flag {other:?}");
                } else {
                    ids.push(other.to_string());
                }
            }
        }
    }
    if ids.is_empty() {
        ids = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    assert!(
        shard.is_some() == emit_path.is_some(),
        "--shard and --emit-shard go together"
    );
    assert!(
        merge_paths.is_empty() || shard.is_none(),
        "--merge-shards conflicts with --shard/--emit-shard"
    );

    if let (Some((shard, shards)), Some(path)) = (shard, emit_path) {
        emit(profile, rt, &ids, shard, shards, &path);
    } else if !merge_paths.is_empty() {
        merge(profile, rt, &ids, &merge_paths);
    } else {
        let runner = Runner::single(rt);
        render(profile, &ids, &runner);
        runner.assert_drained();
    }
}

/// Renders every selected experiment to stdout.
fn render(profile: Profile, ids: &[String], runner: &Runner) {
    for id in ids {
        let start = std::time::Instant::now();
        let table = run_experiment(id, profile, runner);
        println!("{table}");
        eprintln!("[{id} finished in {:.1?}]", start.elapsed());
    }
}

/// `--shard i/n --emit-shard PATH`: solve this shard's slice of every
/// selected batch experiment and write the snapshots.
fn emit(
    profile: Profile,
    rt: RuntimeConfig,
    ids: &[String],
    shard: usize,
    shards: usize,
    path: &str,
) {
    let runner = Runner::emit(rt, shard, shards);
    for id in ids {
        if !BATCH_EXPERIMENTS.contains(&id.as_str()) {
            eprintln!("[{id} does not batch; it runs inline at merge time]");
            continue;
        }
        let start = std::time::Instant::now();
        let table = run_experiment(id, profile, &runner);
        assert!(table.is_empty(), "emit mode must not render");
        eprintln!(
            "[{id} shard {shard}/{shards} solved in {:.1?}]",
            start.elapsed()
        );
    }
    let reports = runner.into_emitted();
    let file = File::create(path).unwrap_or_else(|e| panic!("create {path:?}: {e}"));
    write_shard_file(
        BufWriter::new(file),
        profile,
        &ids.join(","),
        shard,
        shards,
        &reports,
    )
    .unwrap_or_else(|e| panic!("write {path:?}: {e}"));
    eprintln!(
        "[shard {shard}/{shards}: {} batch snapshots written to {path}]",
        reports.len()
    );
}

/// `--merge-shards PATHS..`: verify the shard files belong together,
/// merge their snapshots, and render every selected experiment.
fn merge(profile: Profile, rt: RuntimeConfig, ids: &[String], paths: &[String]) {
    let expected_ids = ids.join(",");
    let mut queues = Vec::new();
    let mut seen_shards = Vec::new();
    let mut split = None;
    for path in paths {
        let file = File::open(path).unwrap_or_else(|e| panic!("open {path:?}: {e}"));
        let shard_file =
            read_shard_file(BufReader::new(file)).unwrap_or_else(|e| panic!("read {path:?}: {e}"));
        assert!(
            shard_file.profile == profile,
            "{path}: emitted with a different profile"
        );
        assert!(
            shard_file.ids == expected_ids,
            "{path}: emitted with experiments [{}], merging [{expected_ids}]",
            shard_file.ids
        );
        let shards = *split.get_or_insert(shard_file.shards);
        assert!(
            shard_file.shards == shards,
            "{path}: a {}-shard file in a {shards}-shard merge",
            shard_file.shards
        );
        assert!(
            !seen_shards.contains(&shard_file.shard),
            "{path}: shard {} supplied twice",
            shard_file.shard
        );
        seen_shards.push(shard_file.shard);
        queues.push(shard_file.reports);
    }
    let shards = split.expect("at least one shard file");
    assert!(
        seen_shards.len() == shards,
        "merge needs all {shards} shards, got {:?}",
        seen_shards
    );
    let runner = Runner::merge(rt, queues);
    render(profile, ids, &runner);
    runner.assert_drained();
}
